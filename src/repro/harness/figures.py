"""Registry of the paper's figures: speedup curves and summary bars.

Each entry knows which application, variant, and problem size regenerate
a figure.  ``bench_params`` returns the problem sizes the benchmarks use:
paper sizes wherever a run costs seconds, and a documented scale-down for
ASP (n=3000 -> n=1000) whose event count would otherwise dominate the
benchmark suite; EXPERIMENTS.md discusses the effect of the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..apps import make_app, paper_params
from ..apps.base import AppResult
from ..network import DAS_PARAMS, NetworkParams
from .experiment import CurvePoint, run_app, speedup_curve

__all__ = [
    "FigureSpec",
    "SPEEDUP_FIGURES",
    "bench_params",
    "figure_curves",
    "figure15_bars",
    "figure16_bars",
    "format_curves",
    "format_bars",
    "QUICK_CPUS",
    "FULL_CPUS",
]

QUICK_CPUS = (8, 16, 32, 60)
FULL_CPUS = (1, 8, 16, 32, 60)


@dataclass(frozen=True)
class FigureSpec:
    figure: str
    app: str
    variant: str
    caption: str


#: Figures 1-14: per-application speedup curves, original and optimized.
SPEEDUP_FIGURES: Dict[str, FigureSpec] = {
    "fig1": FigureSpec("fig1", "water", "original", "Speedup of Water"),
    "fig2": FigureSpec("fig2", "water", "optimized",
                       "Speedup of optimized Water"),
    "fig3": FigureSpec("fig3", "tsp", "original", "Speedup of TSP"),
    "fig4": FigureSpec("fig4", "tsp", "optimized",
                       "Speedup of optimized TSP"),
    "fig5": FigureSpec("fig5", "asp", "original", "Speedup of ASP"),
    "fig6": FigureSpec("fig6", "asp", "optimized",
                       "Speedup of optimized ASP"),
    "fig7": FigureSpec("fig7", "atpg", "original", "Speedup of ATPG"),
    "fig8": FigureSpec("fig8", "atpg", "optimized",
                       "Speedup of optimized ATPG"),
    "fig9": FigureSpec("fig9", "ra", "original", "Speedup of RA"),
    "fig10": FigureSpec("fig10", "ra", "optimized",
                        "Speedup of optimized RA"),
    "fig11": FigureSpec("fig11", "ida", "original", "Speedup of IDA*"),
    "fig12": FigureSpec("fig12", "acp", "original", "Speedup of ACP"),
    "fig13": FigureSpec("fig13", "sor", "original", "Speedup of SOR"),
    "fig14": FigureSpec("fig14", "sor", "optimized",
                        "Speedup of optimized SOR"),
}


def bench_params(app_name: str) -> Any:
    """Problem sizes for the benchmark suite (see module docstring)."""
    params = paper_params(app_name)
    if app_name == "asp":
        # n=3000 would dominate the suite's wall time; n=1000 with the
        # per-element cost scaled 3x keeps the paper-size ratio of
        # compute-per-iteration to WAN-row-transfer-per-iteration, which
        # is the quantity Figures 5/6 exercise.
        return params.with_(n_vertices=1000, elem_cost=300e-9)
    return params


def figure_curves(figure: str,
                  cpu_counts: Sequence[int] = QUICK_CPUS,
                  cluster_counts: Sequence[int] = (1, 2, 4),
                  network: NetworkParams = DAS_PARAMS,
                  ) -> Dict[int, List[CurvePoint]]:
    """Regenerate one of Figures 1-14 as speedup curves."""
    spec = SPEEDUP_FIGURES[figure]
    app = make_app(spec.app)
    return speedup_curve(app, spec.variant, bench_params(spec.app),
                         cluster_counts=cluster_counts,
                         cpu_counts=cpu_counts, network=network)


# ------------------------------------------------------- summary figures


def figure15_bars(app_name: str,
                  network: NetworkParams = DAS_PARAMS) -> Dict[str, float]:
    """Figure 15: four bars for one application (4-cluster study).

    lower bound = original on 1x15; original/optimized on 4x15;
    upper bound = optimized on 1x60.  Values are speedups relative to the
    variant's own single-processor run, as in the paper.
    """
    app = make_app(app_name)
    params = bench_params(app_name)
    opt = "optimized" if "optimized" in app.variants else "original"

    t1_orig = run_app(app, "original", 1, 1, params, network=network).elapsed
    t1_opt = run_app(app, opt, 1, 1, params, network=network).elapsed

    def speed(variant, n_clusters, per, t1):
        res = run_app(app, variant, n_clusters, per, params, network=network)
        return t1 / res.elapsed

    return {
        "lower_bound_15_1": speed("original", 1, 15, t1_orig),
        "original_60_4": speed("original", 4, 15, t1_orig),
        "optimized_60_4": speed(opt, 4, 15, t1_opt),
        "upper_bound_60_1": speed(opt, 1, 60, t1_opt),
    }


def figure16_bars(app_name: str,
                  network: NetworkParams = DAS_PARAMS) -> Dict[str, float]:
    """Figure 16: the two-cluster (Delft + VU Amsterdam) study: original on
    16/1, original and optimized on 32/2, optimized on 32/1."""
    app = make_app(app_name)
    params = bench_params(app_name)
    opt = "optimized" if "optimized" in app.variants else "original"

    t1_orig = run_app(app, "original", 1, 1, params, network=network).elapsed
    t1_opt = run_app(app, opt, 1, 1, params, network=network).elapsed

    def speed(variant, n_clusters, per, t1):
        res = run_app(app, variant, n_clusters, per, params, network=network)
        return t1 / res.elapsed

    return {
        "original_16_1": speed("original", 1, 16, t1_orig),
        "original_32_2": speed("original", 2, 16, t1_orig),
        "optimized_32_2": speed(opt, 2, 16, t1_opt),
        "optimized_32_1": speed(opt, 1, 32, t1_opt),
    }


# ------------------------------------------------------------ formatting


def format_curves(figure: str, curves: Dict[int, List[CurvePoint]]) -> str:
    """Render speedup curves as the rows behind one of Figures 1-14."""
    spec = SPEEDUP_FIGURES[figure]
    lines = [f"{spec.figure}: {spec.caption} ({spec.app}/{spec.variant})",
             f"{'clusters':>8} {'cpus':>5} {'speedup':>8} {'elapsed(s)':>11}"]
    for n_clusters in sorted(curves):
        for pt in curves[n_clusters]:
            lines.append(f"{n_clusters:>8} {pt.n_cpus:>5} "
                         f"{pt.speedup:>8.1f} {pt.elapsed:>11.4f}")
    return "\n".join(lines)


def format_bars(title: str, bars: Dict[str, Dict[str, float]]) -> str:
    """Render Figure 15/16 style per-application bars."""
    keys = list(next(iter(bars.values())).keys())
    header = f"{'app':>6} " + " ".join(f"{k:>18}" for k in keys)
    lines = [title, header]
    for app_name, row in bars.items():
        lines.append(f"{app_name:>6} "
                     + " ".join(f"{row[k]:>18.1f}" for k in keys))
    return "\n".join(lines)
