"""Registry of the paper's figures: speedup curves and summary bars.

Each entry knows which application, variant, and problem size regenerate
a figure.  ``bench_params`` returns the problem sizes the benchmarks use:
paper sizes wherever a run costs seconds, and a documented scale-down for
ASP (n=3000 -> n=1000) whose event count would otherwise dominate the
benchmark suite; EXPERIMENTS.md discusses the effect of the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..apps import make_app, paper_params
from ..apps.base import AppResult
from ..network import DAS_PARAMS, NetworkParams
from .experiment import CurvePoint, speedup_curve
from .sweeps import ParallelRunner, RunSpec

__all__ = [
    "FigureSpec",
    "SPEEDUP_FIGURES",
    "bench_params",
    "figure_curves",
    "figure15_bars",
    "figure15_bars_many",
    "figure16_bars",
    "figure16_bars_many",
    "format_curves",
    "format_bars",
    "QUICK_CPUS",
    "FULL_CPUS",
]

QUICK_CPUS = (8, 16, 32, 60)
FULL_CPUS = (1, 8, 16, 32, 60)


@dataclass(frozen=True)
class FigureSpec:
    figure: str
    app: str
    variant: str
    caption: str


#: Figures 1-14: per-application speedup curves, original and optimized.
SPEEDUP_FIGURES: Dict[str, FigureSpec] = {
    "fig1": FigureSpec("fig1", "water", "original", "Speedup of Water"),
    "fig2": FigureSpec("fig2", "water", "optimized",
                       "Speedup of optimized Water"),
    "fig3": FigureSpec("fig3", "tsp", "original", "Speedup of TSP"),
    "fig4": FigureSpec("fig4", "tsp", "optimized",
                       "Speedup of optimized TSP"),
    "fig5": FigureSpec("fig5", "asp", "original", "Speedup of ASP"),
    "fig6": FigureSpec("fig6", "asp", "optimized",
                       "Speedup of optimized ASP"),
    "fig7": FigureSpec("fig7", "atpg", "original", "Speedup of ATPG"),
    "fig8": FigureSpec("fig8", "atpg", "optimized",
                       "Speedup of optimized ATPG"),
    "fig9": FigureSpec("fig9", "ra", "original", "Speedup of RA"),
    "fig10": FigureSpec("fig10", "ra", "optimized",
                        "Speedup of optimized RA"),
    "fig11": FigureSpec("fig11", "ida", "original", "Speedup of IDA*"),
    "fig12": FigureSpec("fig12", "acp", "original", "Speedup of ACP"),
    "fig13": FigureSpec("fig13", "sor", "original", "Speedup of SOR"),
    "fig14": FigureSpec("fig14", "sor", "optimized",
                        "Speedup of optimized SOR"),
}


def bench_params(app_name: str) -> Any:
    """Problem sizes for the benchmark suite (see module docstring)."""
    params = paper_params(app_name)
    if app_name == "asp":
        # n=3000 would dominate the suite's wall time; n=1000 with the
        # per-element cost scaled 3x keeps the paper-size ratio of
        # compute-per-iteration to WAN-row-transfer-per-iteration, which
        # is the quantity Figures 5/6 exercise.
        return params.with_(n_vertices=1000, elem_cost=300e-9)
    return params


def figure_curves(figure: str,
                  cpu_counts: Sequence[int] = QUICK_CPUS,
                  cluster_counts: Sequence[int] = (1, 2, 4),
                  network: NetworkParams = DAS_PARAMS,
                  baseline_elapsed: Optional[float] = None,
                  runner: Optional[ParallelRunner] = None,
                  ) -> Dict[int, List[CurvePoint]]:
    """Regenerate one of Figures 1-14 as speedup curves.

    ``runner`` parallelizes/caches the grid; ``baseline_elapsed`` skips
    the 1x1 baseline run when the caller already has it (e.g. from a
    sibling figure of the same app/variant).
    """
    spec = SPEEDUP_FIGURES[figure]
    app = make_app(spec.app)
    return speedup_curve(app, spec.variant, bench_params(spec.app),
                         cluster_counts=cluster_counts,
                         cpu_counts=cpu_counts, network=network,
                         baseline_elapsed=baseline_elapsed, runner=runner)


# ------------------------------------------------------- summary figures

#: Figure 15 bars as (label, variant-role, n_clusters, nodes_per_cluster);
#: the "opt" role degrades to "original" for apps with no optimized variant.
_FIG15_BARS = (
    ("lower_bound_15_1", "original", 1, 15),
    ("original_60_4", "original", 4, 15),
    ("optimized_60_4", "opt", 4, 15),
    ("upper_bound_60_1", "opt", 1, 60),
)

#: Figure 16 bars (two-cluster Delft + VU Amsterdam study).
_FIG16_BARS = (
    ("original_16_1", "original", 1, 16),
    ("original_32_2", "original", 2, 16),
    ("optimized_32_2", "opt", 2, 16),
    ("optimized_32_1", "opt", 1, 32),
)


def _bar_specs(app_name: str, bars, network: NetworkParams) -> List[RunSpec]:
    """The run grid behind one app's summary bars: each bar's run plus the
    two 1x1 baselines (appended last).  Duplicate specs (apps without an
    optimized variant) are deduplicated by the runner."""
    app = make_app(app_name)
    params = bench_params(app_name)
    opt = "optimized" if "optimized" in app.variants else "original"
    variant = {"original": "original", "opt": opt}
    specs = [RunSpec(app_name, variant[role], c, per, params, network=network)
             for (_label, role, c, per) in bars]
    specs.append(RunSpec(app_name, "original", 1, 1, params, network=network))
    specs.append(RunSpec(app_name, opt, 1, 1, params, network=network))
    return specs


def _bar_values(bars, results: List[AppResult]) -> Dict[str, float]:
    """Speedups for one app's bars from its grid results (baselines last)."""
    t1 = {"original": results[-2].elapsed, "opt": results[-1].elapsed}
    return {label: t1[role] / res.elapsed
            for (label, role, _c, _p), res in zip(bars, results)}


def _bars_many(app_names: Sequence[str], bars, network: NetworkParams,
               runner: Optional[ParallelRunner]) -> Dict[str, Dict[str, float]]:
    """One flat batch for several apps' bars — a single runner.run() call,
    so every independent simulation is available to the pool at once."""
    if runner is None:
        runner = ParallelRunner()
    per_app = [_bar_specs(name, bars, network) for name in app_names]
    flat = [spec for specs in per_app for spec in specs]
    results = runner.run(flat)
    out: Dict[str, Dict[str, float]] = {}
    pos = 0
    for name, specs in zip(app_names, per_app):
        chunk = results[pos:pos + len(specs)]
        pos += len(specs)
        out[name] = _bar_values(bars, chunk)
    return out


def figure15_bars(app_name: str,
                  network: NetworkParams = DAS_PARAMS,
                  runner: Optional[ParallelRunner] = None
                  ) -> Dict[str, float]:
    """Figure 15: four bars for one application (4-cluster study).

    lower bound = original on 1x15; original/optimized on 4x15;
    upper bound = optimized on 1x60.  Values are speedups relative to the
    variant's own single-processor run, as in the paper.
    """
    return _bars_many([app_name], _FIG15_BARS, network, runner)[app_name]


def figure15_bars_many(app_names: Sequence[str],
                       network: NetworkParams = DAS_PARAMS,
                       runner: Optional[ParallelRunner] = None
                       ) -> Dict[str, Dict[str, float]]:
    """Figure 15 bars for several apps as one parallel batch."""
    return _bars_many(app_names, _FIG15_BARS, network, runner)


def figure16_bars(app_name: str,
                  network: NetworkParams = DAS_PARAMS,
                  runner: Optional[ParallelRunner] = None
                  ) -> Dict[str, float]:
    """Figure 16: the two-cluster (Delft + VU Amsterdam) study: original on
    16/1, original and optimized on 32/2, optimized on 32/1."""
    return _bars_many([app_name], _FIG16_BARS, network, runner)[app_name]


def figure16_bars_many(app_names: Sequence[str],
                       network: NetworkParams = DAS_PARAMS,
                       runner: Optional[ParallelRunner] = None
                       ) -> Dict[str, Dict[str, float]]:
    """Figure 16 bars for several apps as one parallel batch."""
    return _bars_many(app_names, _FIG16_BARS, network, runner)


# ------------------------------------------------------------ formatting


def format_curves(figure: str, curves: Dict[int, List[CurvePoint]]) -> str:
    """Render speedup curves as the rows behind one of Figures 1-14."""
    spec = SPEEDUP_FIGURES[figure]
    lines = [f"{spec.figure}: {spec.caption} ({spec.app}/{spec.variant})",
             f"{'clusters':>8} {'cpus':>5} {'speedup':>8} {'elapsed(s)':>11}"]
    for n_clusters in sorted(curves):
        for pt in curves[n_clusters]:
            lines.append(f"{n_clusters:>8} {pt.n_cpus:>5} "
                         f"{pt.speedup:>8.1f} {pt.elapsed:>11.4f}")
    return "\n".join(lines)


def format_bars(title: str, bars: Dict[str, Dict[str, float]]) -> str:
    """Render Figure 15/16 style per-application bars."""
    keys = list(next(iter(bars.values())).keys())
    header = f"{'app':>6} " + " ".join(f"{k:>18}" for k in keys)
    lines = [title, header]
    for app_name, row in bars.items():
        lines.append(f"{app_name:>6} "
                     + " ".join(f"{row[k]:>18.1f}" for k in keys))
    return "\n".join(lines)
