"""Experiment harness: runners and the paper's figure/table registry."""

from .experiment import PAPER_CPU_COUNTS, CurvePoint, run_app, speedup_curve
from .plot import ascii_speedup_plot
from .sweeps import (ParallelRunner, ResultCache, RunSpec, default_jobs,
                     format_stragglers)
from .figures import (
    FULL_CPUS,
    QUICK_CPUS,
    SPEEDUP_FIGURES,
    FigureSpec,
    bench_params,
    figure15_bars,
    figure15_bars_many,
    figure16_bars,
    figure16_bars_many,
    figure_curves,
    format_bars,
    format_curves,
)
from .tables import (
    format_table1,
    format_table2,
    format_traffic,
    table1_microbenchmarks,
    table2_row,
    traffic_row,
)

__all__ = [
    "PAPER_CPU_COUNTS",
    "ascii_speedup_plot",
    "CurvePoint",
    "run_app",
    "speedup_curve",
    "ParallelRunner",
    "ResultCache",
    "format_stragglers",
    "RunSpec",
    "default_jobs",
    "figure15_bars_many",
    "figure16_bars_many",
    "FULL_CPUS",
    "QUICK_CPUS",
    "SPEEDUP_FIGURES",
    "FigureSpec",
    "bench_params",
    "figure15_bars",
    "figure16_bars",
    "figure_curves",
    "format_bars",
    "format_curves",
    "format_table1",
    "format_table2",
    "format_traffic",
    "table1_microbenchmarks",
    "table2_row",
    "traffic_row",
]
