"""Parallel experiment sweeps: fan independent runs over a process pool.

Every paper artifact is a grid of *fully independent* :func:`run_app`
simulations, so the sweep layer parallelizes them the obvious way: a
:class:`RunSpec` is a small picklable description of one grid point, a
:class:`ParallelRunner` maps a list of specs over a ``multiprocessing``
pool (each worker rebuilds the full simulator stack from the spec and
returns the slim :class:`AppResult`), and a :class:`ResultCache` keyed by
a content hash of the spec — problem parameters and network parameters
included — lets a re-run of a figure skip every already-computed point.

Properties the rest of the harness relies on:

* **Determinism** — results come back in spec order, and each simulation
  is bit-identical whether it ran in-process, in a worker, or out of the
  cache (the simulator itself is deterministic; the pool only changes
  *where* a run executes, never what it computes).
* **Serial fallback** — ``jobs=1`` (the default) never touches
  ``multiprocessing``; the ``REPRO_JOBS`` environment variable supplies
  the default worker count for CLI and library callers alike.
* **Deduplication** — identical specs in one batch are computed once
  (figure harnesses share 1x1 baselines between variants and figures).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import sys
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..apps import ALL_APPS, make_app
from ..apps.base import AppResult
from ..network import DAS_PARAMS, NetworkParams
from ..scenario import Scenario
from ..sim.trace import TraceRecord, TraceSpec
from . import jobs as jobs_mod

__all__ = [
    "RunSpec",
    "ResultCache",
    "ParallelRunner",
    "default_jobs",
    "default_cache_dir",
    "format_stragglers",
]

#: Environment variable supplying the default worker count (parsed by
#: the shared resolver in :mod:`repro.harness.jobs`).
JOBS_ENV = jobs_mod.JOBS_ENV
#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Salt mixed into every cache key.  Bump when a simulator change is
#: *meant* to alter results, so stale entries cannot shadow new numbers
#: (pure host-time optimizations do not need a bump — virtual-time
#: results are bit-identical by design).
#: "2": RunSpec grew the ``scenario`` field (WAN impairments, faults,
#: heterogeneity — see docs/SCENARIOS.md).
#: "3": RunSpec grew the ``decision`` field (tuned protocol selection —
#: see docs/TUNING.md), and integer-typed scenario parameters are now
#: stored as ints (``max_retries=8``, not ``8.0``).
CACHE_SCHEMA = "3"


#: Worker count from ``REPRO_JOBS`` — re-exported from the shared
#: resolver (:mod:`repro.harness.jobs`), which the PDES partition pool
#: uses too, so both layers parse the environment identically.
default_jobs = jobs_mod.default_jobs


def default_cache_dir() -> str:
    """``REPRO_CACHE_DIR``, or ``~/.cache/repro/sweeps``."""
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "sweeps")


@dataclass(frozen=True)
class RunSpec:
    """A picklable description of one ``run_app`` invocation.

    ``app`` is the registry name (the worker rebuilds the application
    object with :func:`make_app`); ``params`` is the app's frozen
    parameter dataclass; everything else mirrors ``run_app``'s signature.
    """

    app: str
    variant: str
    n_clusters: int
    nodes_per_cluster: int
    params: Any
    network: NetworkParams = DAS_PARAMS
    sequencer: Optional[str] = None
    dedicated_sequencer_node: bool = False
    #: When set, the run is traced with a tracer built from this spec
    #: (frozen and picklable, so it ships to pool workers) and the
    #: records come back on ``AppResult.trace_records``.  Tracing never
    #: changes the simulation — results stay bit-identical.
    trace: Optional[TraceSpec] = None
    #: Optional :class:`~repro.scenario.Scenario` (WAN impairments,
    #: faults, heterogeneity — see docs/SCENARIOS.md).  Frozen and
    #: picklable like everything else here; its ``repr`` spells out
    #: every model parameter and the seed, so it participates in the
    #: cache key and scenario runs cache like clean ones.
    scenario: Optional[Scenario] = None
    #: Optional :class:`~repro.tuner.DecisionModel` (calibrated protocol
    #: selection — see docs/TUNING.md).  Frozen/picklable; its ``repr``
    #: spells out every fitted coefficient, so tuned and fixed runs have
    #: distinct cache identities.
    decision: Optional[Any] = None
    #: Partitioned (PDES) execution mode for this run
    #: (``"off"``/``"on"``/``"auto"``; ``None`` defers to ``REPRO_PDES``)
    #: and the worker count.  Excluded from the cache key: a PDES run
    #: produces the identical result, so both execution modes share one
    #: cache identity — exactly like the trace spec.
    pdes: Optional[str] = None
    pdes_workers: Optional[int] = None

    def __post_init__(self):
        if self.app not in ALL_APPS:
            raise ValueError(f"unknown application {self.app!r}; "
                             f"choose from {sorted(ALL_APPS)}")

    def key(self) -> str:
        """Content hash of the spec (problem + network params included).

        The hash is over the ``repr`` of the frozen dataclasses, which
        spells out every field by name — any parameter change, including
        a nested network/link parameter, invalidates the cache entry.
        The trace spec is deliberately excluded: tracing cannot change
        results, so a traced and an untraced run share one identity
        (the runner skips the cache for traced specs instead — a cached
        result carries no records).
        """
        text = repr((CACHE_SCHEMA, self.app, self.variant, self.n_clusters,
                     self.nodes_per_cluster, self.params, self.network,
                     self.sequencer, self.dedicated_sequencer_node,
                     self.scenario, self.decision))
        return hashlib.sha256(text.encode()).hexdigest()

    def execute(self) -> AppResult:
        """Rebuild the stack and run this grid point (in this process)."""
        from .experiment import run_app

        tracer = self.trace.build() if self.trace is not None else None
        result = run_app(make_app(self.app), self.variant, self.n_clusters,
                         self.nodes_per_cluster, self.params,
                         network=self.network, sequencer=self.sequencer,
                         dedicated_sequencer_node=self.dedicated_sequencer_node,
                         trace=tracer is not None, tracer=tracer,
                         scenario=self.scenario, decision=self.decision,
                         pdes=self.pdes, pdes_workers=self.pdes_workers)
        if tracer is not None:
            result.trace_records = list(tracer.records)
        return result


def _mark_pool_worker(width: int) -> None:
    """Pool initializer: record the sweep fan-out in the environment."""
    os.environ[jobs_mod.ACTIVE_JOBS_ENV] = str(width)


def _execute_spec(spec: RunSpec) -> AppResult:
    """Module-level worker entry point (picklable for the pool)."""
    return spec.execute()


def _execute_timed(spec: RunSpec) -> Tuple[AppResult, float]:
    """Worker entry point that also reports host wall-clock seconds."""
    t0 = time.perf_counter()
    result = spec.execute()
    return result, time.perf_counter() - t0


def _execute_timed_batch(
        specs: Sequence[RunSpec]) -> List[Tuple[AppResult, float]]:
    """Worker entry point for a *batch* of specs.

    One pool round-trip carries many small grid points, amortizing the
    pickle/IPC cost that dominates sweeps of tiny simulations (the
    fig15/fig16 grids are hundreds of sub-second points).  Each point
    is still timed individually, so per-point ``sweep.point`` records
    and straggler reports are exactly as precise as unbatched runs.
    """
    return [_execute_timed(spec) for spec in specs]


class ResultCache:
    """On-disk result cache: one pickle per content-hash key.

    Writes are atomic (tempfile + rename), so a crashed or parallel
    writer can never leave a truncated entry; unreadable entries are
    treated as misses and overwritten.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root if root is not None else default_cache_dir()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def get(self, key: str) -> Optional[AppResult]:
        try:
            with open(self._path(key), "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return None

    def put(self, key: str, result: AppResult) -> None:
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Remove every cached entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        for dirpath, _dirs, files in os.walk(self.root):
            for name in files:
                if name.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
        return removed


class ParallelRunner:
    """Runs batches of :class:`RunSpec` over a process pool.

    ``jobs`` defaults to ``REPRO_JOBS`` (or 1).  ``jobs=1`` runs serially
    in-process — no pool, no pickling.  Results always come back in spec
    order, and duplicate specs within a batch are computed only once.

    ``batch`` sets how many grid points ride in one worker dispatch.
    Large sweeps of small points (fig15/fig16: hundreds of sub-second
    simulations) spend real time on per-point pickle/IPC round-trips;
    batching amortizes that without changing any result — batches are
    sliced in spec order and flattened back in order, and every point
    is still timed individually for ``sweep.point``/straggler reports.
    The default (``None``) picks 1 until the grid is much larger than
    the pool, then grows so each worker still gets ~4 dispatches.

    ``trace`` applies a :class:`~repro.sim.trace.TraceSpec` to every
    spec in a batch that does not already carry one, so whole figures
    can run traced (typically bounded — a ring buffer and/or sampling —
    so parallel sweeps stay cheap).  Traced specs bypass the result
    cache in both directions: a cached result has no records to give,
    and a traced result is not written back (the cache stores slim
    results only).  With ``trace_dir``, each traced grid point's records
    are exported as a Perfetto file named
    ``{app}-{variant}-{C}x{N}-{key8}.trace.json`` (and then dropped from
    the in-memory result, so a big sweep never holds every trace at
    once); the paths accumulate on ``trace_files``.

    ``pdes`` (with optional ``pdes_workers``) applies the partitioned
    execution mode to every spec that does not already pin one — the
    same mirror pattern as ``trace``.  PDES runs are bit-identical to
    single-process runs, so cache identities are unchanged; points that
    execute serially in this process additionally *reuse* the forked
    PDES worker pool across consecutive grid points of the same
    topology (see :func:`repro.sim.pdes.shutdown_pool`), so a figure
    sweep pays the fork cost once per geometry, not once per point.
    """

    def __init__(self, jobs: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 trace: Optional[TraceSpec] = None,
                 trace_dir: Optional[str] = None,
                 batch: Optional[int] = None,
                 pdes: Optional[str] = None,
                 pdes_workers: Optional[int] = None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self.cache = cache
        self.trace = trace
        self.trace_dir = trace_dir
        #: Grid points per worker dispatch.  ``None`` (the default)
        #: picks a size automatically: 1 for small batches (grid points
        #: are coarse and unevenly sized, so fine-grained dispatch load
        #: balances best), growing once the batch is much larger than
        #: the pool so pickle/IPC overhead is amortized while each
        #: worker still sees several dispatches for load balance.
        self.batch = batch if batch is None else max(1, int(batch))
        self.pdes = pdes
        self.pdes_workers = pdes_workers
        self.trace_files: List[str] = []
        self.hits = 0      # cache hits over this runner's lifetime
        self.computed = 0  # specs actually simulated
        #: One ``sweep.point`` record per grid point this runner served
        #: (see docs/TRACING.md): host-side timing, ``time`` is host
        #: seconds since the runner was created.  This is what lets
        #: ``repro figure --jobs N`` name its stragglers.
        self.point_records: List[TraceRecord] = []
        self._t0 = time.perf_counter()

    def run_one(self, spec: RunSpec) -> AppResult:
        return self.run([spec])[0]

    def run(self, specs: Sequence[RunSpec]) -> List[AppResult]:
        if self.trace is not None:
            specs = [dataclasses.replace(spec, trace=self.trace)
                     if spec.trace is None else spec for spec in specs]
        if self.pdes is not None:
            specs = [dataclasses.replace(
                         spec, pdes=self.pdes,
                         pdes_workers=spec.pdes_workers
                         if spec.pdes_workers is not None
                         else self.pdes_workers)
                     if spec.pdes is None else spec for spec in specs]
        results: List[Optional[AppResult]] = [None] * len(specs)
        # Group uncached work by content key so duplicates run once.
        # The trace spec rides along in the dedup key: a traced and an
        # untraced spec share a cache identity but not an execution.
        todo: Dict[Any, List[int]] = {}
        keyed: Dict[Any, RunSpec] = {}
        for i, spec in enumerate(specs):
            key = spec.key()
            if self.cache is not None and spec.trace is None:
                t0 = time.perf_counter()
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = hit
                    self.hits += 1
                    self._record_point(spec, time.perf_counter() - t0,
                                       cached=True)
                    continue
            dkey = (key, spec.trace)
            todo.setdefault(dkey, []).append(i)
            keyed[dkey] = spec
        if todo:
            dkeys = list(todo)
            work = [keyed[k] for k in dkeys]
            if self.jobs > 1 and len(work) > 1:
                computed = self._run_pool(work)
            else:
                computed = [_execute_timed(spec) for spec in work]
            self.computed += len(work)
            for dkey, (result, host_s) in zip(dkeys, computed):
                spec = keyed[dkey]
                self._record_point(spec, host_s, cached=False)
                if self.cache is not None and spec.trace is None:
                    self.cache.put(dkey[0], result)
                if (spec.trace is not None and self.trace_dir
                        and getattr(result, "trace_records", None) is not None):
                    self._write_trace(spec, dkey[0], result)
                for i in todo[dkey]:
                    results[i] = result
        return results  # type: ignore[return-value]

    def _record_point(self, spec: RunSpec, host_s: float,
                      cached: bool) -> None:
        self.point_records.append(TraceRecord(
            time=time.perf_counter() - self._t0, kind="sweep.point",
            detail={"app": spec.app, "variant": spec.variant,
                    "clusters": spec.n_clusters,
                    "nodes": spec.nodes_per_cluster,
                    "host_s": host_s, "cached": cached}))

    def _write_trace(self, spec: RunSpec, key: str,
                     result: AppResult) -> str:
        from ..obs.export import write_chrome

        os.makedirs(self.trace_dir, exist_ok=True)
        name = (f"{spec.app}-{spec.variant}-{spec.n_clusters}x"
                f"{spec.nodes_per_cluster}-{key[:8]}.trace.json")
        path = os.path.join(self.trace_dir, name)
        with open(path, "w", encoding="utf-8") as fh:
            write_chrome(result.trace_records, fh)
        result.trace_records = None  # exported; free the batch's memory
        self.trace_files.append(path)
        return path

    def _run_pool(self, work: List[RunSpec]) -> List[Tuple[AppResult, float]]:
        import multiprocessing as mp

        # fork shares the already-imported package with the workers;
        # spawn (macOS/Windows default) re-imports it from sys.path.
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX
            ctx = mp.get_context("spawn")
        n = min(self.jobs, len(work))
        size = self._batch_size(len(work), n)
        # Mark workers with the pool width: nested host-parallel layers
        # (the PDES partition pool) read it and decline to multiply the
        # fan-out (see repro.harness.jobs).
        with ctx.Pool(processes=n, initializer=_mark_pool_worker,
                      initargs=(n,)) as pool:
            if size <= 1:
                # chunksize=1: grid points are coarse and unevenly sized.
                return pool.map(_execute_timed, work, chunksize=1)
            batches = [work[i:i + size] for i in range(0, len(work), size)]
            timed = pool.map(_execute_timed_batch, batches, chunksize=1)
        return [pair for group in timed for pair in group]

    def _batch_size(self, n_work: int, n_workers: int) -> int:
        """Points per dispatch: explicit ``batch`` wins, else a heuristic.

        The auto rule keeps at least four dispatches in flight per
        worker, so batching never costs more than ~25% tail latency to
        a straggler batch while cutting IPC round-trips by the batch
        factor on large grids (``n_work <= 4 * jobs`` stays unbatched).
        """
        if self.batch is not None:
            return self.batch
        return max(1, n_work // (n_workers * 4))


def format_stragglers(records: Sequence[TraceRecord],
                      limit: int = 5) -> str:
    """Summarize a sweep's ``sweep.point`` records: who held the batch up.

    With ``--jobs N`` the batch finishes when its slowest point does, so
    the interesting number is each point's share of the *computed* time:
    one grid point at 40% of the total is the straggler that bounds how
    far extra workers can help.
    """
    points = [r for r in records if r.kind == "sweep.point"]
    computed = [r for r in points if not r.detail["cached"]]
    total = sum(r.detail["host_s"] for r in computed)
    lines = [f"sweep: {len(points)} points, {len(computed)} simulated, "
             f"{len(points) - len(computed)} cached, "
             f"{total:.2f}s host time simulated"]
    slowest = sorted(computed, key=lambda r: r.detail["host_s"],
                     reverse=True)[:limit]
    for r in slowest:
        d = r.detail
        share = d["host_s"] / total if total > 0 else 0.0
        lines.append(f"  {d['host_s']:>7.2f}s ({share:>4.0%})  "
                     f"{d['app']}/{d['variant']} "
                     f"{d['clusters']}x{d['nodes']}")
    return "\n".join(lines)
