"""ASCII rendering of speedup curves (the paper's figure style, in text).

No plotting dependencies are available offline, and the figures are
simple enough that a character grid with the classic ``linear`` diagonal
reads exactly like the paper's gnuplot output.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .experiment import CurvePoint

__all__ = ["ascii_speedup_plot"]

#: plot symbol per cluster count, like the paper's point styles.
MARKERS = {1: "o", 2: "x", 4: "#"}


def ascii_speedup_plot(curves: Dict[int, List[CurvePoint]],
                       title: str = "", width: int = 64,
                       height: int = 20, max_axis: int = 60) -> str:
    """Render speedup-vs-CPUs curves on a character grid.

    The dotted diagonal is linear speedup; markers: o = 1 cluster,
    x = 2 clusters, # = 4 clusters (overlap keeps the larger count).
    """
    grid = [[" "] * (width + 1) for _ in range(height + 1)]

    def col(cpus: float) -> int:
        return round(min(cpus, max_axis) / max_axis * width)

    def row(speedup: float) -> int:
        return height - round(min(speedup, max_axis) / max_axis * height)

    # Linear-speedup reference diagonal.
    for c in range(0, max_axis + 1, 2):
        grid[row(c)][col(c)] = "."

    for n_clusters in sorted(curves):
        marker = MARKERS.get(n_clusters, "*")
        for pt in curves[n_clusters]:
            grid[row(pt.speedup)][col(pt.n_cpus)] = marker

    lines = []
    if title:
        lines.append(title)
    for r, chars in enumerate(grid):
        label = max_axis - round(r / height * max_axis)
        lines.append(f"{label:>4} |" + "".join(chars))
    lines.append("     +" + "-" * (width + 1))
    ticks = "      "
    step = max_axis // 4
    for t in range(0, max_axis + 1, step):
        pos = 6 + col(t)
        ticks = ticks.ljust(pos) + str(t)
    lines.append(ticks)
    lines.append("      CPUs   (o=1 cluster, x=2, #=4, .=linear)")
    return "\n".join(lines)
