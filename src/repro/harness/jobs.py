"""Shared worker-count resolution for every host-parallel layer.

Two layers of the harness fan work out over host cores:

* the sweep pool (:mod:`repro.harness.sweeps`) — grid points across
  ``REPRO_JOBS`` workers;
* the PDES partition pool (:mod:`repro.sim.pdes`) — one simulation
  split across ``REPRO_PDES_WORKERS`` workers.

Both resolve their counts here so the parsing rules (clamp to 1,
*loud* fallback on a typo) stay in one place, and so the two pools can
see each other: a sweep worker that starts a PDES run would multiply
the pools (jobs x partitions processes on one host).  The sweep pool
therefore marks its workers via :data:`ACTIVE_JOBS_ENV`, and
:func:`pdes_auto_allowed` / :func:`pdes_workers` apply the
oversubscription policy — ``auto`` declines to nest, and a forced
``on`` divides the host's cores by the active sweep width.
"""

from __future__ import annotations

import os
import sys
from typing import Optional

__all__ = [
    "JOBS_ENV",
    "PDES_WORKERS_ENV",
    "ACTIVE_JOBS_ENV",
    "env_int",
    "env_choice",
    "default_jobs",
    "active_sweep_jobs",
    "pdes_auto_allowed",
    "pdes_workers",
]

#: Sweep pool width (grid points in parallel).
JOBS_ENV = "REPRO_JOBS"
#: PDES pool width (partitions in parallel within one simulation).
PDES_WORKERS_ENV = "REPRO_PDES_WORKERS"
#: Set in sweep-pool workers to the pool's width, so nested layers know
#: the host is already fanned out ``N`` ways.
ACTIVE_JOBS_ENV = "REPRO_ACTIVE_JOBS"


def env_int(env: str, default: int, *, minimum: int = 1,
            fallback_note: str = "") -> int:
    """Integer from environment variable ``env``, clamped to ``minimum``.

    An unset/empty variable yields ``default`` silently; an unparsable
    one also yields ``default`` but *loudly* — a typo silently changing
    the parallelism a user asked for is a debugging trap.
    """
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        return max(minimum, int(raw))
    except ValueError:
        note = fallback_note or f"using {default}"
        print(f"repro: warning: ignoring unparsable {env}={raw!r} "
              f"(want an integer); {note}", file=sys.stderr)
        return default


def env_choice(env: str, choices: tuple, default: str) -> str:
    """Enum-valued environment variable with the same loud-fallback
    contract as :func:`env_int`: unset/empty yields ``default``
    silently, an unknown value yields ``default`` with a warning (the
    PDES channel selector ``REPRO_PDES_CHANNEL`` resolves here)."""
    raw = os.environ.get(env, "").strip().lower()
    if not raw:
        return default
    if raw in choices:
        return raw
    print(f"repro: warning: ignoring unknown {env}={raw!r} "
          f"(choose from {', '.join(choices)}); using {default!r}",
          file=sys.stderr)
    return default


def default_jobs() -> int:
    """Sweep worker count from ``REPRO_JOBS`` (default 1 — fully serial)."""
    return env_int(JOBS_ENV, 1,
                   fallback_note="running serially with 1 job")


def active_sweep_jobs() -> int:
    """Width of the enclosing sweep pool (1 when not inside a worker)."""
    return env_int(ACTIVE_JOBS_ENV, 1)


def pdes_auto_allowed() -> bool:
    """Whether ``REPRO_PDES=auto`` may turn PDES on in this process.

    Inside a sweep-pool worker the host is already busy running other
    grid points, so ``auto`` stays single-process: points x partitions
    would oversubscribe the host without speeding anything up.  An
    explicit ``on`` still wins (and is then width-limited by
    :func:`pdes_workers`).
    """
    return active_sweep_jobs() <= 1


def pdes_workers(n_partitions: int, requested: Optional[int] = None) -> int:
    """Partition-pool width: how many PDES workers to actually fork.

    ``requested`` (the ``--pdes-workers`` flag) wins; else
    ``REPRO_PDES_WORKERS``; else every available core.  The result is
    capped at ``n_partitions`` (more workers than partitions is pure
    overhead).  A *derived* width is further capped at the host's cores
    divided by the active sweep width, so jobs x workers stays within
    the machine; an explicit request is honored as asked (tests and
    demos need a fixed partition count on any host — oversubscribed
    workers still compute the identical result, just slower).
    """
    if requested is None:
        requested = env_int(PDES_WORKERS_ENV, 0, minimum=0,
                            fallback_note="sizing from the host's cores")
    cores = os.cpu_count() or 1
    if requested and requested > 0:
        width = requested
    else:
        width = max(1, min(cores, cores // active_sweep_jobs()))
    return max(1, min(width, n_partitions))
