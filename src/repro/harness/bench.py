"""Throughput measurement against the committed perf baselines.

One entry point shared by humans and CI: the ``repro bench`` verb and
the ``tools/bench_report.py`` shim both call :func:`main` here.  The
repo commits three small JSON files at its root:

* ``BENCH_engine.json`` — events/s per engine micro-workload, one
  section per engine tier (``python`` always; ``compiled`` when the
  optional C core builds — checking on a compiler-less machine skips
  the compiled section with a log line instead of failing)
* ``BENCH_fabric.json`` — messages/s per fabric path (fast tier)
* ``BENCH_orca.json``   — broadcasts/RPCs/s per control-plane workload
  (fast tier, micro) plus whole-app runs/s (macro)
* ``BENCH_collectives.json`` — collectives/s per tuner primitive (the
  shaped/striped WAN paths) plus the tuner probe loop
* ``BENCH_pdes.json``   — per-epoch protocol overhead of the
  partitioned engine over the single-process oracle (µs/epoch,
  lower-is-better: the check enforces a *ceiling*), plus informational
  throughput, epoch counts, the wall-clock speedup and the
  ``host_cores`` geometry it was measured on

``--suite`` accepts a suite name or ``suite:tier`` (e.g.
``engine:compiled``).  An *explicitly* requested suite or tier that has
no committed baseline section, or that this host cannot measure, is a
hard failure under ``--check``; only auto-discovered tiers (``--suite
all`` / bare ``engine``) skip-loudly when the host cannot build them.

``--write`` refreshes them from a local run (do this on the machine
that defines the baseline, typically CI hardware, after a deliberate
perf change).  ``--check`` re-measures and prints a per-metric delta
table, failing if any workload dropped more than ``--threshold``
(default 30%) below its committed number — the CI perf-smoke job runs
this so event-path regressions surface in review rather than in a 10x
slower figure sweep three PRs later.

Run from the repo root::

    PYTHONPATH=src python -m repro bench --write
    PYTHONPATH=src python -m repro bench --check
    PYTHONPATH=src python -m repro bench --check --suite orca
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["main", "measure_engine", "measure_fabric", "measure_orca",
           "measure_collectives", "measure_pdes", "write_baselines",
           "check_baselines", "parse_suite_request", "SUITES"]

ROOT = pathlib.Path(__file__).resolve().parents[3]

ENGINE_JSON = ROOT / "BENCH_engine.json"
FABRIC_JSON = ROOT / "BENCH_fabric.json"
ORCA_JSON = ROOT / "BENCH_orca.json"
COLLECTIVES_JSON = ROOT / "BENCH_collectives.json"
PDES_JSON = ROOT / "BENCH_pdes.json"


def _import_benchmarks() -> None:
    """Make the repo's ``benchmarks/`` modules importable."""
    bdir = str(ROOT / "benchmarks")
    if bdir not in sys.path:
        sys.path.insert(0, bdir)


# ------------------------------------------------------------- measurement

def _engine_numbers(repeat: int = 3) -> dict:
    """Events/s per engine micro-workload, for the tier loaded in *this*
    process (see bench_engine_micro).  Callers wanting a specific tier
    must set ``REPRO_ENGINE`` before the first ``repro.sim`` import —
    which is why :func:`measure_engine` shells out per tier."""
    _import_benchmarks()
    from bench_engine_micro import WORKLOADS, _events_processed

    results = {}
    total_events = 0
    total_best = 0.0
    for name, fn in WORKLOADS:
        best = float("inf")
        events = 0
        for _ in range(repeat):
            t0 = time.perf_counter()
            sim, approx = fn()
            dt = time.perf_counter() - t0
            events = _events_processed(sim, approx)
            best = min(best, dt)
        total_events += events
        total_best += best
        results[name] = round(events / best)
    results["TOTAL"] = round(total_events / total_best)
    return results


def _measure_engine_tier(tier: str, repeat: int) -> dict:
    """Run :func:`_engine_numbers` in a subprocess pinned to one tier."""
    env = dict(os.environ)
    env["REPRO_ENGINE"] = tier
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    code = ("import json\n"
            "from repro.harness.bench import _engine_numbers\n"
            f"print(json.dumps(_engine_numbers({int(repeat)})))\n")
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True)
    if out.returncode != 0:
        raise RuntimeError(f"engine bench subprocess (tier {tier}) failed:\n"
                           f"{out.stderr}")
    return json.loads(out.stdout.strip().splitlines()[-1])


def measure_engine(repeat: int = 3) -> dict:
    """Events/s per engine micro-workload, one section per engine tier.

    Returns ``{"python": {...}, "compiled": {...}}``; the compiled
    section is present only when the compiled core builds on this
    machine, so baselines written on CI hardware stay checkable (with a
    skip line) on compiler-less machines.
    """
    from ..sim._build import compiler_available

    tiers = ["python"] + (["compiled"] if compiler_available() else [])
    return {tier: _measure_engine_tier(tier, repeat) for tier in tiers}


def measure_fabric(repeat: int = 3) -> dict:
    """Messages/s per fabric path, fast tier plus the fast/legacy ratio."""
    _import_benchmarks()
    from bench_fabric_micro import run_suite

    _text, data = run_suite(repeat=repeat)
    return {name: {"msgs_per_s": round(entry["fast"]),
                   "speedup_vs_legacy": round(entry["speedup"], 2)}
            for name, entry in data.items()}


def measure_orca(repeat: int = 3) -> dict:
    """Orca control-plane throughput: micro (broadcasts/RPCs per second)
    and macro (whole apps per second), fast tier plus fast/legacy ratio."""
    _import_benchmarks()
    from bench_orca_macro import run_suite as run_macro
    from bench_orca_micro import run_suite as run_micro

    results = {}
    _text, micro = run_micro(repeat=repeat)
    for name, entry in micro.items():
        results[f"micro/{name}"] = {
            "ops_per_s": round(entry["fast"]),
            "speedup_vs_legacy": round(entry["speedup"], 2)}
    _text, macro = run_macro(repeat=repeat)
    for name, entry in macro.items():
        results[f"macro/{name}"] = {
            "ops_per_s": round(entry["fast"], 2),
            "speedup_vs_legacy": round(entry["speedup"], 2)}
    return results


def measure_collectives(repeat: int = 3) -> dict:
    """Collectives/s per tuner primitive: the shaped/striped WAN paths
    next to the flat default, plus the tuner's own probe loop."""
    _import_benchmarks()
    from bench_collectives_micro import run_suite

    _text, data = run_suite(repeat=repeat)
    return {name: {"ops_per_s": round(entry["ops_per_s"], 2)}
            for name, entry in data.items()}


def measure_pdes(repeat: int = 3) -> dict:
    """Partitioned-engine whole-run throughput vs the single-process
    oracle (one forked worker per cluster), plus ``host_cores``."""
    _import_benchmarks()
    from bench_pdes_micro import run_suite

    _text, data = run_suite(repeat=repeat)
    return data


def _flat_pdes(results: dict) -> Dict[str, float]:
    """Per-epoch protocol overhead only (µs/epoch, lower-is-better).

    Raw throughput, the speedup ratio and the core count depend on the
    measuring host's geometry, so they ride along unchecked; overhead
    per epoch is the one number that isolates the synchronization
    protocol from the work the oracle does anyway."""
    flat = {}
    for name, entry in results.items():
        if not isinstance(entry, dict):
            continue  # host_cores and other scalars: informational
        flat[f"{name}/overhead_us_per_epoch"] = entry["overhead_us_per_epoch"]
    return flat


def _flat_engine(results: dict) -> Dict[str, float]:
    if any(not isinstance(v, dict) for v in results.values()):
        return dict(results)  # pre-tier flat layout (old baselines)
    return {f"{tier}/{name}": v
            for tier, section in results.items()
            for name, v in section.items()}


def _flat_fabric(results: dict) -> Dict[str, float]:
    return {k: v["msgs_per_s"] for k, v in results.items()}


def _flat_orca(results: dict) -> Dict[str, float]:
    return {k: v["ops_per_s"] for k, v in results.items()}


#: suite name -> (baseline path, measure fn, flatten-to-numbers fn).
SUITES: Dict[str, Tuple[pathlib.Path, Callable[[int], dict],
                        Callable[[dict], Dict[str, float]]]] = {
    "engine": (ENGINE_JSON, measure_engine, _flat_engine),
    "fabric": (FABRIC_JSON, measure_fabric, _flat_fabric),
    "orca": (ORCA_JSON, measure_orca, _flat_orca),
    "collectives": (COLLECTIVES_JSON, measure_collectives, _flat_orca),
    "pdes": (PDES_JSON, measure_pdes, _flat_pdes),
}

#: suites whose baseline JSON has one section per tier (``suite:tier``
#: requests are only meaningful for these).
TIERED_SUITES = ("engine",)

#: metric-name suffixes that measure a *cost* rather than a throughput:
#: for these the check enforces a ceiling (``base * (1 + threshold)``)
#: instead of a floor, and a drop is an improvement.
LOWER_IS_BETTER_SUFFIXES = ("overhead_us_per_epoch",)


def _lower_is_better(name: str) -> bool:
    return name.endswith(LOWER_IS_BETTER_SUFFIXES)


def parse_suite_request(request: str) -> Tuple[List[str], Optional[str]]:
    """Parse the ``--suite`` value into ``(suites, explicit_tier)``.

    ``all`` expands to every registered suite; ``name`` selects one
    suite; ``name:tier`` (tiered suites only) additionally pins one
    baseline tier, which ``--check`` then must find both committed and
    measurable.  Raises ``ValueError`` on unknown names.
    """
    if request == "all":
        return sorted(SUITES), None
    suite, sep, tier = request.partition(":")
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r} "
                         f"(choose from all, {', '.join(sorted(SUITES))})")
    if not sep:
        return [suite], None
    if suite not in TIERED_SUITES:
        raise ValueError(f"suite {suite!r} has no tiers; "
                         f"tier syntax applies to: "
                         f"{', '.join(TIERED_SUITES)}")
    if not tier:
        raise ValueError(f"empty tier in {request!r} (want e.g. "
                         f"{suite}:python)")
    return [suite], tier


# ---------------------------------------------------------- write / check

def _payload(kind: str, results: dict) -> dict:
    return {
        "bench": kind,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }


def write_baselines(repeat: int, suites: Sequence[str]) -> int:
    for suite in suites:
        path, measure, flatten = SUITES[suite]
        results = measure(repeat)
        path.write_text(json.dumps(_payload(suite, results), indent=2) + "\n")
        print(f"wrote {path.name}: {flatten(results)}")
    return 0


def check_baselines(repeat: int, threshold: float, suites: Sequence[str],
                    tier: Optional[str] = None) -> int:
    """Re-measure ``suites`` and fail on regressions vs the committed
    baselines.

    ``tier`` (from an explicit ``suite:tier`` request) pins one baseline
    tier of a tiered suite: it must then exist in the committed file AND
    be measurable on this host, or the check fails — the skip-loudly
    escape hatch is only for tiers the user did not ask for by name.
    """
    failures: List[str] = []
    rows: List[Tuple[str, str, float, Optional[float], str]] = []

    for suite in suites:
        path, measure, flatten = SUITES[suite]
        if not path.exists():
            failures.append(f"{path.name} not found — run --write first")
            continue
        committed_raw = json.loads(path.read_text())["results"]
        current_raw = measure(repeat)
        if suite in TIERED_SUITES:
            if tier is not None:
                # Explicit suite:tier request — no silent narrowing.
                if tier not in committed_raw:
                    failures.append(
                        f"{suite}:{tier}: no committed baseline section "
                        f"in {path.name} — run --write on a machine with "
                        f"that tier")
                    continue
                if tier not in current_raw:
                    failures.append(
                        f"{suite}:{tier}: tier unavailable on this "
                        f"machine (no C compiler?) — explicitly requested "
                        f"tiers fail instead of skipping")
                    continue
                committed_raw = {tier: committed_raw[tier]}
                current_raw = {tier: current_raw[tier]}
            else:
                # A baseline written where the compiled core builds is
                # still checkable on a compiler-less machine: skip
                # (loudly) the auto-discovered tiers this machine cannot
                # measure instead of failing.
                for t in [t for t, sec in committed_raw.items()
                          if isinstance(sec, dict) and t not in current_raw]:
                    print(f"{suite}: {t} tier unavailable on this machine "
                          f"(no C compiler?); skipping its baselines")
                    committed_raw = {u: sec for u, sec in
                                     committed_raw.items() if u != t}
        committed = flatten(committed_raw)
        current = flatten(current_raw)
        for name, base in committed.items():
            cur = current.get(name)
            if cur is None:
                failures.append(f"{suite}/{name}: missing from current run")
                rows.append((suite, name, base, None, "MISSING"))
                continue
            if _lower_is_better(name):
                ceiling = base * (1.0 + threshold)
                status = "ok" if cur <= ceiling else "REGRESSION"
                rows.append((suite, name, base, cur, status))
                if cur > ceiling:
                    failures.append(
                        f"{suite}/{name}: {cur} is {cur / base - 1:.0%} "
                        f"above baseline {base} (lower is better, "
                        f"threshold {threshold:.0%})")
                continue
            floor = base * (1.0 - threshold)
            status = "ok" if cur >= floor else "REGRESSION"
            rows.append((suite, name, base, cur, status))
            if cur < floor:
                failures.append(
                    f"{suite}/{name}: {cur}/s is {1 - cur / base:.0%} below "
                    f"baseline {base}/s (threshold {threshold:.0%})")

    width = max((len(f"{s}/{n}") for s, n, *_ in rows), default=20)
    print(f"{'metric':<{width}} {'baseline':>12} {'current':>12} "
          f"{'delta':>7}  status")
    for suite, name, base, cur, status in rows:
        metric = f"{suite}/{name}"
        if cur is None:
            print(f"{metric:<{width}} {base:>12} {'-':>12} {'-':>7}  {status}")
        else:
            print(f"{metric:<{width}} {base:>12} {round(cur, 2):>12} "
                  f"{cur / base - 1.0:>+6.0%}  {status}")

    if failures:
        print("\nperf-smoke FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf-smoke OK: all workloads within threshold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="measure throughput and write/check the committed "
                    "BENCH_*.json perf baselines")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (over)write the committed baselines")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on >threshold regressions")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload (best is reported)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional drop vs baseline (0.30)")
    parser.add_argument("--suite", default="all", metavar="SUITE[:TIER]",
                        help="restrict to one baseline suite, optionally "
                             "one tier of it, e.g. engine:compiled "
                             "(default: all)")
    args = parser.parse_args(argv)
    try:
        suites, tier = parse_suite_request(args.suite)
    except ValueError as exc:
        parser.error(str(exc))
    if args.write:
        if tier is not None:
            parser.error("--write refreshes whole suites; drop the "
                         ":tier suffix")
        return write_baselines(args.repeat, suites)
    return check_baselines(args.repeat, args.threshold, suites, tier=tier)
