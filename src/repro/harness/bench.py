"""Throughput measurement against the committed perf baselines.

One entry point shared by humans and CI: the ``repro bench`` verb and
the ``tools/bench_report.py`` shim both call :func:`main` here.  The
repo commits three small JSON files at its root:

* ``BENCH_engine.json`` — events/s per engine micro-workload
* ``BENCH_fabric.json`` — messages/s per fabric path (fast tier)
* ``BENCH_orca.json``   — broadcasts/RPCs/s per control-plane workload
  (fast tier, micro) plus whole-app runs/s (macro)

``--write`` refreshes them from a local run (do this on the machine
that defines the baseline, typically CI hardware, after a deliberate
perf change).  ``--check`` re-measures and prints a per-metric delta
table, failing if any workload dropped more than ``--threshold``
(default 30%) below its committed number — the CI perf-smoke job runs
this so event-path regressions surface in review rather than in a 10x
slower figure sweep three PRs later.

Run from the repo root::

    PYTHONPATH=src python -m repro bench --write
    PYTHONPATH=src python -m repro bench --check
    PYTHONPATH=src python -m repro bench --check --suite orca
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["main", "measure_engine", "measure_fabric", "measure_orca",
           "write_baselines", "check_baselines", "SUITES"]

ROOT = pathlib.Path(__file__).resolve().parents[3]

ENGINE_JSON = ROOT / "BENCH_engine.json"
FABRIC_JSON = ROOT / "BENCH_fabric.json"
ORCA_JSON = ROOT / "BENCH_orca.json"


def _import_benchmarks() -> None:
    """Make the repo's ``benchmarks/`` modules importable."""
    bdir = str(ROOT / "benchmarks")
    if bdir not in sys.path:
        sys.path.insert(0, bdir)


# ------------------------------------------------------------- measurement

def measure_engine(repeat: int = 3) -> dict:
    """Events/s per engine micro-workload (see bench_engine_micro)."""
    _import_benchmarks()
    from bench_engine_micro import WORKLOADS, _events_processed

    results = {}
    total_events = 0
    total_best = 0.0
    for name, fn in WORKLOADS:
        best = float("inf")
        events = 0
        for _ in range(repeat):
            t0 = time.perf_counter()
            sim, approx = fn()
            dt = time.perf_counter() - t0
            events = _events_processed(sim, approx)
            best = min(best, dt)
        total_events += events
        total_best += best
        results[name] = round(events / best)
    results["TOTAL"] = round(total_events / total_best)
    return results


def measure_fabric(repeat: int = 3) -> dict:
    """Messages/s per fabric path, fast tier plus the fast/legacy ratio."""
    _import_benchmarks()
    from bench_fabric_micro import run_suite

    _text, data = run_suite(repeat=repeat)
    return {name: {"msgs_per_s": round(entry["fast"]),
                   "speedup_vs_legacy": round(entry["speedup"], 2)}
            for name, entry in data.items()}


def measure_orca(repeat: int = 3) -> dict:
    """Orca control-plane throughput: micro (broadcasts/RPCs per second)
    and macro (whole apps per second), fast tier plus fast/legacy ratio."""
    _import_benchmarks()
    from bench_orca_macro import run_suite as run_macro
    from bench_orca_micro import run_suite as run_micro

    results = {}
    _text, micro = run_micro(repeat=repeat)
    for name, entry in micro.items():
        results[f"micro/{name}"] = {
            "ops_per_s": round(entry["fast"]),
            "speedup_vs_legacy": round(entry["speedup"], 2)}
    _text, macro = run_macro(repeat=repeat)
    for name, entry in macro.items():
        results[f"macro/{name}"] = {
            "ops_per_s": round(entry["fast"], 2),
            "speedup_vs_legacy": round(entry["speedup"], 2)}
    return results


def _flat_engine(results: dict) -> Dict[str, float]:
    return dict(results)


def _flat_fabric(results: dict) -> Dict[str, float]:
    return {k: v["msgs_per_s"] for k, v in results.items()}


def _flat_orca(results: dict) -> Dict[str, float]:
    return {k: v["ops_per_s"] for k, v in results.items()}


#: suite name -> (baseline path, measure fn, flatten-to-numbers fn).
SUITES: Dict[str, Tuple[pathlib.Path, Callable[[int], dict],
                        Callable[[dict], Dict[str, float]]]] = {
    "engine": (ENGINE_JSON, measure_engine, _flat_engine),
    "fabric": (FABRIC_JSON, measure_fabric, _flat_fabric),
    "orca": (ORCA_JSON, measure_orca, _flat_orca),
}


# ---------------------------------------------------------- write / check

def _payload(kind: str, results: dict) -> dict:
    return {
        "bench": kind,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }


def write_baselines(repeat: int, suites: Sequence[str]) -> int:
    for suite in suites:
        path, measure, flatten = SUITES[suite]
        results = measure(repeat)
        path.write_text(json.dumps(_payload(suite, results), indent=2) + "\n")
        print(f"wrote {path.name}: {flatten(results)}")
    return 0


def check_baselines(repeat: int, threshold: float,
                    suites: Sequence[str]) -> int:
    failures: List[str] = []
    rows: List[Tuple[str, str, float, Optional[float], str]] = []

    for suite in suites:
        path, measure, flatten = SUITES[suite]
        if not path.exists():
            failures.append(f"{path.name} not found — run --write first")
            continue
        committed = flatten(json.loads(path.read_text())["results"])
        current = flatten(measure(repeat))
        for name, base in committed.items():
            cur = current.get(name)
            if cur is None:
                failures.append(f"{suite}/{name}: missing from current run")
                rows.append((suite, name, base, None, "MISSING"))
                continue
            floor = base * (1.0 - threshold)
            status = "ok" if cur >= floor else "REGRESSION"
            rows.append((suite, name, base, cur, status))
            if cur < floor:
                failures.append(
                    f"{suite}/{name}: {cur}/s is {1 - cur / base:.0%} below "
                    f"baseline {base}/s (threshold {threshold:.0%})")

    width = max((len(f"{s}/{n}") for s, n, *_ in rows), default=20)
    print(f"{'metric':<{width}} {'baseline':>12} {'current':>12} "
          f"{'delta':>7}  status")
    for suite, name, base, cur, status in rows:
        metric = f"{suite}/{name}"
        if cur is None:
            print(f"{metric:<{width}} {base:>12} {'-':>12} {'-':>7}  {status}")
        else:
            print(f"{metric:<{width}} {base:>12} {round(cur, 2):>12} "
                  f"{cur / base - 1.0:>+6.0%}  {status}")

    if failures:
        print("\nperf-smoke FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf-smoke OK: all workloads within threshold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="measure throughput and write/check the committed "
                    "BENCH_*.json perf baselines")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (over)write the committed baselines")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on >threshold regressions")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload (best is reported)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional drop vs baseline (0.30)")
    parser.add_argument("--suite", choices=["all"] + sorted(SUITES),
                        default="all",
                        help="restrict to one baseline suite (default: all)")
    args = parser.parse_args(argv)
    suites = sorted(SUITES) if args.suite == "all" else [args.suite]
    if args.write:
        return write_baselines(args.repeat, suites)
    return check_baselines(args.repeat, args.threshold, suites)
