"""Registry of the paper's tables.

* Table 1 — Orca low-level latency and bandwidth (LAN vs WAN, RPC vs
  broadcast), measured with micro-benchmarks against the runtime.
* Table 2 — application characteristics on one 64-node cluster.
* Tables 4/5 — intercluster traffic before/after optimization (P=60,
  C=4 — the paper says "64" but four machines are the dedicated
  gateways, so 60 compute nodes do the work, as in its figures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..apps import PAPER_ORDER, make_app
from ..network import DAS_PARAMS, Fabric, NetworkParams, uniform_clusters
from ..orca import ObjectSpec, Operation, OrcaRuntime
from ..sim import Simulator
from .figures import bench_params
from .sweeps import ParallelRunner, RunSpec

__all__ = [
    "table1_microbenchmarks",
    "table2_row",
    "traffic_row",
    "format_table1",
    "format_table2",
    "format_traffic",
]


# ------------------------------------------------------------- Table 1


def _null_object(name: str, owner: int, result_bytes: int = 0) -> ObjectSpec:
    return ObjectSpec(
        name, dict,
        {"nop": Operation(fn=lambda s: None, arg_bytes=0,
                          result_bytes=result_bytes),
         "blob": Operation(fn=lambda s, payload: None,
                           writes=True,
                           arg_bytes=lambda payload: payload)},
        owner=owner)


def _replicated_counter(name: str) -> ObjectSpec:
    def bump(state, payload):
        state["v"] = state.get("v", 0) + 1

    return ObjectSpec(
        name, dict,
        {"bump": Operation(fn=bump, writes=True,
                           arg_bytes=lambda payload: payload)},
        replicated=True)


def _build(n_clusters: int, nodes_per_cluster: int,
           network: NetworkParams):
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(n_clusters, nodes_per_cluster),
                    network)
    return sim, OrcaRuntime(sim, fabric)


def _rpc_latency(remote_node: int, n_clusters: int, per: int,
                 network: NetworkParams) -> float:
    sim, rts = _build(n_clusters, per, network)
    rts.register(_null_object("t1.null", owner=0))
    reps = 10

    def proc():
        ctx = rts.context(remote_node)
        t0 = sim.now
        for _ in range(reps):
            yield from ctx.invoke("t1.null", "nop")
        return (sim.now - t0) / reps

    return sim.run_process(proc())


def _rpc_bandwidth(remote_node: int, n_clusters: int, per: int,
                   network: NetworkParams) -> float:
    sim, rts = _build(n_clusters, per, network)
    rts.register(_null_object("t1.blob", owner=0))
    size = 100 * 1024
    reps = 10

    def proc():
        ctx = rts.context(remote_node)
        t0 = sim.now
        for _ in range(reps):
            yield from ctx.invoke("t1.blob", "blob", size)
        return reps * size * 8 / (sim.now - t0)  # bits/s

    return sim.run_process(proc())


def _bcast_latency(sender: int, n_clusters: int, per: int,
                   network: NetworkParams) -> float:
    sim, rts = _build(n_clusters, per, network)
    rts.register(_replicated_counter("t1.rep"))
    reps = 10

    def proc():
        ctx = rts.context(sender)
        t0 = sim.now
        for _ in range(reps):
            yield from ctx.invoke("t1.rep", "bump", 0)
        return (sim.now - t0) / reps

    return sim.run_process(proc())


def _bcast_bandwidth(sender: int, n_clusters: int, per: int,
                     network: NetworkParams, reader: int = 0) -> float:
    """Throughput observed by a receiver (on another cluster for the WAN
    row) — the paper's bandwidth is delivery bandwidth, and in BB mode the
    sender finishes long before remote replicas are updated."""
    sim, rts = _build(n_clusters, per, network)
    rts.register(_replicated_counter("t1.rep"))
    size = 100 * 1024
    reps = 5

    def sender_proc():
        ctx = rts.context(sender)
        for _ in range(reps):
            yield from ctx.invoke("t1.rep", "bump", size)

    def reader_proc():
        t0 = sim.now
        while rts.state_of("t1.rep", reader).get("v", 0) < reps:
            yield sim.timeout(1e-4)
        return reps * size * 8 / (sim.now - t0)

    sim.spawn(sender_proc())
    return sim.run_process(reader_proc())


def table1_microbenchmarks(network: NetworkParams = DAS_PARAMS
                           ) -> Dict[str, Dict[str, float]]:
    """Reproduce Table 1.  LAN rows use a 60-node single cluster (the
    paper measures the replicated update on 60 machines); WAN rows use two
    16-node clusters with a remote caller/sender."""
    return {
        "rpc": {
            "lan_latency": _rpc_latency(1, 1, 60, network),
            "wan_latency": _rpc_latency(16, 2, 16, network),
            "lan_bandwidth": _rpc_bandwidth(1, 1, 60, network),
            "wan_bandwidth": _rpc_bandwidth(16, 2, 16, network),
        },
        "bcast": {
            "lan_latency": _bcast_latency(1, 1, 60, network),
            "wan_latency": _bcast_latency(16, 2, 16, network),
            "lan_bandwidth": _bcast_bandwidth(1, 1, 60, network),
            "wan_bandwidth": _bcast_bandwidth(16, 2, 16, network),
        },
    }


# ------------------------------------------------------------- Table 2


def table2_row(app_name: str,
               network: NetworkParams = DAS_PARAMS,
               runner: Optional[ParallelRunner] = None) -> Dict[str, Any]:
    """Application characteristics on one 60-node cluster (the paper's
    64-node column, minus the nodes our experiments reserve as gateways)."""
    if runner is None:
        runner = ParallelRunner()
    params = bench_params(app_name)
    base, res = runner.run([
        RunSpec(app_name, "original", 1, 1, params, network=network),
        RunSpec(app_name, "original", 1, 60, params, network=network),
    ])
    el = max(res.elapsed, 1e-12)

    def rate(kind, field):
        row = res.traffic.get(f"intra.{kind}", {"count": 0, "bytes": 0})
        value = row[field] / el
        return value / 1024.0 if field == "bytes" else value

    return {
        "app": app_name,
        "rpc_per_s": rate("rpc", "count") + rate("msg", "count"),
        "rpc_kbytes_per_s": rate("rpc", "bytes") + rate("msg", "bytes"),
        "bcast_per_s": rate("bcast", "count"),
        "bcast_kbytes_per_s": rate("bcast", "bytes"),
        "speedup": base.elapsed / el,
    }


# ---------------------------------------------------------- Tables 4/5


def traffic_row(app_name: str, variant: str,
                network: NetworkParams = DAS_PARAMS,
                runner: Optional[ParallelRunner] = None) -> Dict[str, Any]:
    """One row of Table 4 (original) or Table 5 (optimized): intercluster
    traffic on four 15-node clusters."""
    app = make_app(app_name)
    if variant not in app.variants:
        variant = "original"
    if runner is None:
        runner = ParallelRunner()
    params = bench_params(app_name)
    res = runner.run_one(
        RunSpec(app_name, variant, 4, 15, params, network=network))

    def get(kind):
        return res.traffic.get(f"inter.{kind}", {"count": 0, "bytes": 0})

    rpc = get("rpc")
    msg = get("msg")
    bcast = get("bcast")
    return {
        "app": app_name,
        "variant": variant,
        "rpc_count": rpc["count"] + msg["count"],
        "rpc_kbytes": (rpc["bytes"] + msg["bytes"]) / 1024.0,
        "bcast_count": bcast["count"],
        "bcast_kbytes": bcast["bytes"] / 1024.0,
    }


# ------------------------------------------------------------ formatting


def format_table1(data: Dict[str, Dict[str, float]]) -> str:
    """Render the Table 1 micro-benchmark results."""
    lines = ["Table 1: Orca low-level performance",
             f"{'benchmark':>22} {'LAN lat':>10} {'WAN lat':>10} "
             f"{'LAN bw':>12} {'WAN bw':>12}"]
    names = {"rpc": "RPC (non-replicated)", "bcast": "Broadcast (replicated)"}
    for key, row in data.items():
        lines.append(
            f"{names[key]:>22} "
            f"{row['lan_latency'] * 1e6:>8.1f}us "
            f"{row['wan_latency'] * 1e3:>8.2f}ms "
            f"{row['lan_bandwidth'] / 1e6:>7.1f}Mbit/s "
            f"{row['wan_bandwidth'] / 1e6:>7.2f}Mbit/s")
    return "\n".join(lines)


def format_table2(rows) -> str:
    """Render Table 2 rows (one per application)."""
    lines = ["Table 2: application characteristics on one cluster (60 nodes)",
             f"{'app':>6} {'#RPC/s':>10} {'kbyte/s':>10} {'#bcast/s':>10} "
             f"{'kbyte/s':>10} {'speedup':>8}"]
    for r in rows:
        lines.append(f"{r['app']:>6} {r['rpc_per_s']:>10.0f} "
                     f"{r['rpc_kbytes_per_s']:>10.0f} "
                     f"{r['bcast_per_s']:>10.0f} "
                     f"{r['bcast_kbytes_per_s']:>10.0f} "
                     f"{r['speedup']:>8.1f}")
    return "\n".join(lines)


def format_traffic(title: str, rows) -> str:
    """Render Table 4/5 intercluster-traffic rows."""
    lines = [title,
             f"{'app':>6} {'#RPC':>10} {'RPC kbyte':>11} {'#bcast':>8} "
             f"{'bcast kbyte':>12}"]
    for r in rows:
        lines.append(f"{r['app']:>6} {r['rpc_count']:>10} "
                     f"{r['rpc_kbytes']:>11.0f} {r['bcast_count']:>8} "
                     f"{r['bcast_kbytes']:>12.0f}")
    return "\n".join(lines)
