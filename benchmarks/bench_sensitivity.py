"""Section 4.4 sensitivity: ATPG on a slower network (10 ms latency,
2 Mbit/s), plus the Internet-Sunday-morning reference point of Section 2.

Paper shape: at DAS settings the ATPG optimization is insignificant; on
the slower network the original degrades significantly and the
cluster-level reduction recovers it.
"""

from conftest import emit, run_once

from repro.apps.atpg import ATPGApp, ATPGParams
from repro.harness import run_app
from repro.network import DAS_PARAMS, INTERNET_PARAMS, SLOW_WAN_PARAMS

NETWORKS = [("DAS ATM", DAS_PARAMS), ("Internet (Sunday)", INTERNET_PARAMS),
            ("slow WAN 10ms/2Mbit", SLOW_WAN_PARAMS)]


def test_atpg_network_sensitivity(benchmark):
    def run():
        out = {}
        params = ATPGParams.paper()
        for label, network in NETWORKS:
            orig = run_app(ATPGApp(), "original", 4, 15, params,
                           network=network)
            opt = run_app(ATPGApp(), "optimized", 4, 15, params,
                          network=network)
            out[label] = (orig.elapsed, opt.elapsed)
        return out

    data = run_once(benchmark, run)
    lines = ["ATPG sensitivity to WAN quality (4x15)",
             f"{'network':>22} {'original(s)':>12} {'optimized(s)':>13} "
             f"{'opt/orig':>9}"]
    for label, (o, t) in data.items():
        lines.append(f"{label:>22} {o:>12.3f} {t:>13.3f} {t / o:>9.2f}")
    emit("sensitivity_atpg", "\n".join(lines))

    das_ratio = data["DAS ATM"][1] / data["DAS ATM"][0]
    slow_ratio = data["slow WAN 10ms/2Mbit"][1] / data["slow WAN 10ms/2Mbit"][0]
    # The optimization matters more the slower the network.
    assert slow_ratio < das_ratio
    assert das_ratio > 0.7        # insignificant-ish at DAS settings
    assert slow_ratio < 0.8       # significant on the slow network
