"""Table 1: Orca low-level latency and bandwidth, LAN vs WAN.

Paper values: RPC 40 us / 2.7 ms latency, 208 / 4.53 Mbit/s bandwidth;
broadcast 65 us / 3.0 ms, 248 / 4.53 Mbit/s.
"""

from conftest import emit, run_once

from repro.harness import format_table1, table1_microbenchmarks


def test_table1_low_level_performance(benchmark):
    data = run_once(benchmark, table1_microbenchmarks)
    emit("table1", format_table1(data))

    rpc, bc = data["rpc"], data["bcast"]
    # LAN/WAN gap: almost two orders of magnitude in both dimensions.
    assert 30 < rpc["wan_latency"] / rpc["lan_latency"] < 120
    assert 30 < rpc["lan_bandwidth"] / rpc["wan_bandwidth"] < 120
    # Absolute calibration against the paper, with tolerance.
    assert 30e-6 < rpc["lan_latency"] < 50e-6
    assert 2.3e-3 < rpc["wan_latency"] < 3.1e-3
    assert 150e6 < rpc["lan_bandwidth"] < 260e6
    assert 3.5e6 < rpc["wan_bandwidth"] < 5.0e6
    assert 40e-6 < bc["lan_latency"] < 90e-6
    assert 2.0e-3 < bc["wan_latency"] < 3.5e-3
    assert 3.5e6 < bc["wan_bandwidth"] < 5.5e6
