"""Macro-benchmark: whole applications per second, fast vs legacy tiers.

Where ``bench_orca_micro`` isolates single control-plane operations,
this runs complete paper applications (test-sized problems) end to end
through ``run_app`` and reports host-side runs per second in both
tiers.  It answers the question the micro numbers cannot: how much of
a *real* app's host time the callback-chained fabric + control plane
actually saves, with application compute, barriers and mixed traffic
in the loop.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_orca_macro.py [--repeat 3]

or under pytest-benchmark along with the rest of the suite.  Results
are persisted to ``benchmarks/out/bench_orca_macro.txt`` and folded
into the committed ``BENCH_orca.json`` by ``repro bench --write``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.apps import make_app, small_params
from repro.harness.experiment import run_app

#: (label, app, n_clusters, nodes_per_cluster) — one broadcast-heavy
#: app, one RPC/job-queue app, one message-passing app.
APPS = [
    ("asp_2x3", "asp", 2, 3),
    ("tsp_2x3", "tsp", 2, 3),
    ("sor_2x3", "sor", 2, 3),
]

MODES = (("fast", True), ("legacy", False))


def _run(app_name: str, n_clusters: int, per: int, fast: bool):
    app = make_app(app_name)
    return run_app(app, app.variants[0], n_clusters, per,
                   small_params(app_name), fast_paths=fast)


def run_suite(repeat: int = 3, modes=MODES):
    """Return ``(text, data)``: a printable table and per-app runs/s."""
    labels = [label for label, _fp in modes]
    header = f"{'app':>12}" + "".join(f" {l + ' runs/s':>14}"
                                      for l in labels)
    if len(labels) > 1:
        header += f" {'speedup':>9}"
    lines = ["orca macro-benchmark: whole-app host throughput", header]
    data = {}
    for name, app_name, n_clusters, per in APPS:
        entry = {}
        for label, fp in modes:
            best = float("inf")
            for _ in range(repeat):
                t0 = time.perf_counter()
                _run(app_name, n_clusters, per, fp)
                best = min(best, time.perf_counter() - t0)
            entry[label] = 1.0 / best
        row = f"{name:>12}" + "".join(f" {entry[l]:>14.2f}" for l in labels)
        if "fast" in entry and "legacy" in entry:
            entry["speedup"] = entry["fast"] / entry["legacy"]
            row += f" {entry['speedup']:>8.2f}x"
        data[name] = entry
        lines.append(row)
    return "\n".join(lines), data


def test_orca_macro(benchmark):
    """pytest-benchmark entry point: one pass over every app."""
    from conftest import emit, run_once

    text, _data = run_once(benchmark, lambda: run_suite(repeat=1))
    emit("bench_orca_macro", text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per app (best is reported)")
    args = parser.parse_args(argv)
    text, _data = run_suite(repeat=args.repeat)
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
