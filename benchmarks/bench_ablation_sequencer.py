"""Ablation: sequencer protocol for ASP's phased broadcasts.

DESIGN.md calls out the ordering protocol as the design choice behind
Figures 5/6.  This sweep runs ASP on 4x15 under all three protocols:
centralized (Section 2's "major performance problem"), distributed
per-cluster (the system default), and migrating (the ASP optimization).
"""

from conftest import emit, run_once

from repro.apps.asp import ASPApp
from repro.harness import bench_params, run_app

PROTOCOLS = ("centralized", "distributed", "migrating")


def test_ablation_asp_sequencer_protocols(benchmark):
    def run():
        params = bench_params("asp")
        return {kind: run_app(ASPApp(), "original", 4, 15, params,
                              sequencer=kind).elapsed
                for kind in PROTOCOLS}

    data = run_once(benchmark, run)
    lines = ["Ablation: ASP (4x15) under each sequencer protocol",
             f"{'protocol':>12} {'elapsed(s)':>11}"]
    for kind in PROTOCOLS:
        lines.append(f"{kind:>12} {data[kind]:>11.3f}")
    emit("ablation_sequencer", "\n".join(lines))

    # Migrating beats distributed beats centralized for phased broadcasts.
    assert data["migrating"] < data["distributed"]
    assert data["distributed"] < data["centralized"] * 1.05
    assert data["migrating"] < 0.8 * data["centralized"]
