"""Micro-benchmark for the fabric's message paths: messages per second.

Measures *host* wall-clock throughput of whole message deliveries —
self, LAN, WAN and multicast, uncontended and contended — in both fabric
tiers: the default callback-chained fast paths and the legacy per-leg
process trees (``fast_paths=False``).  The speedup column is the direct
payoff of the event-minimizing paths; the golden equivalence suite
guarantees the two tiers produce identical virtual-time results, so this
ratio is pure host-side overhead reduction.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fabric_micro.py [--repeat 3]
    PYTHONPATH=src python benchmarks/bench_fabric_micro.py --legacy

or under pytest-benchmark along with the rest of the suite.  Results are
persisted to ``benchmarks/out/bench_fabric_micro.txt``;
``tools/bench_report.py`` turns them into the committed ``BENCH_fabric
.json`` the CI perf-smoke job regresses against.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.sim import Simulator


def _mk(fast: bool, n_clusters: int = 2, per: int = 4):
    sim = Simulator()
    topo = uniform_clusters(n_clusters, per)
    return sim, Fabric(sim, topo, DAS_PARAMS, fast_paths=fast)


def wl_self(fast: bool, n: int = 20_000) -> int:
    """Loopback deliveries, one in flight at a time."""
    sim, fab = _mk(fast)

    def proc():
        for _ in range(n):
            yield from fab.send_and_wait(0, 0, 64)

    sim.run_process(proc())
    return n


def wl_lan(fast: bool, n: int = 20_000) -> int:
    """Uncontended LAN deliveries, one in flight at a time."""
    sim, fab = _mk(fast)

    def proc():
        for _ in range(n):
            yield from fab.send_and_wait(0, 1, 64)

    sim.run_process(proc())
    return n


def wl_lan_contended(fast: bool, n: int = 5_000) -> int:
    """Three senders hammering one LAN delivery port (lan_in queueing)."""
    sim, fab = _mk(fast)

    def worker(src):
        for _ in range(n):
            yield from fab.send_and_wait(src, 1, 64)

    procs = [sim.spawn(worker(src)) for src in (0, 2, 3)]
    sim.run()
    assert all(p.triggered for p in procs)
    return 3 * n


def wl_wan(fast: bool, n: int = 6_000) -> int:
    """Uncontended WAN deliveries, one in flight at a time."""
    sim, fab = _mk(fast)

    def proc():
        for _ in range(n):
            yield from fab.send_and_wait(0, 4, 64)

    sim.run_process(proc())
    return n


def wl_wan_contended(fast: bool, n: int = 2_000) -> int:
    """A whole cluster sending over one access link, gateway and PVC."""
    sim, fab = _mk(fast)

    def worker(src):
        for _ in range(n):
            yield from fab.send_and_wait(src, 4 + src, 64)

    procs = [sim.spawn(worker(src)) for src in (0, 1, 2, 3)]
    sim.run()
    assert all(p.triggered for p in procs)
    return 4 * n


def wl_multicast(fast: bool, n: int = 4_000) -> int:
    """LAN hardware multicasts to a 4-node cluster (counted per delivery)."""
    sim, fab = _mk(fast)

    def proc():
        for _ in range(n):
            done = yield from fab.multicast_local(0, 64)
            yield done

    sim.run_process(proc())
    return 4 * n


def wl_wan_multicast(fast: bool, n: int = 1_500) -> int:
    """WAN fan-out multicasts: PVC crossing + remote re-multicast."""
    sim, fab = _mk(fast)

    def proc():
        for _ in range(n):
            done = yield from fab.wan_fanout_multicast(0, 64)
            yield done

    sim.run_process(proc())
    return 4 * n


WORKLOADS = [
    ("self", wl_self),
    ("lan", wl_lan),
    ("lan_contended", wl_lan_contended),
    ("wan", wl_wan),
    ("wan_contended", wl_wan_contended),
    ("multicast", wl_multicast),
    ("wan_multicast", wl_wan_multicast),
]

MODES = (("fast", True), ("legacy", False))


def run_suite(repeat: int = 3, modes=MODES):
    """Return ``(text, data)``: a printable table and per-workload msgs/s."""
    labels = [label for label, _fp in modes]
    header = f"{'workload':>16}" + "".join(f" {l + ' msg/s':>14}"
                                           for l in labels)
    if len(labels) > 1:
        header += f" {'speedup':>9}"
    lines = ["fabric micro-benchmark: message delivery throughput", header]
    data = {}
    for name, fn in WORKLOADS:
        entry = {}
        for label, fp in modes:
            best = float("inf")
            msgs = 0
            for _ in range(repeat):
                t0 = time.perf_counter()
                msgs = fn(fp)
                dt = time.perf_counter() - t0
                best = min(best, dt)
            entry[label] = msgs / best
        row = f"{name:>16}" + "".join(f" {entry[l]:>14.0f}" for l in labels)
        if "fast" in entry and "legacy" in entry:
            entry["speedup"] = entry["fast"] / entry["legacy"]
            row += f" {entry['speedup']:>8.2f}x"
        data[name] = entry
        lines.append(row)
    return "\n".join(lines), data


def test_fabric_micro(benchmark):
    """pytest-benchmark entry point: one pass over every workload."""
    from conftest import emit, run_once

    text, _data = run_once(benchmark, lambda: run_suite(repeat=1))
    emit("bench_fabric_micro", text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload (best is reported)")
    parser.add_argument("--legacy", action="store_true",
                        help="measure only the legacy process paths")
    parser.add_argument("--fast", action="store_true",
                        help="measure only the fast callback paths")
    args = parser.parse_args(argv)
    modes = MODES
    if args.legacy:
        modes = (("legacy", False),)
    elif args.fast:
        modes = (("fast", True),)
    text, _data = run_suite(repeat=args.repeat, modes=modes)
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
