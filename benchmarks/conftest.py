"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures, prints
the rows it produced (the same rows/series the paper reports), and saves
them under ``benchmarks/out/`` for EXPERIMENTS.md.

These are simulation experiments, not micro-benchmarks: each is run once
(``pedantic(rounds=1)``); the virtual-time results are deterministic, so
repetition would only re-measure the simulator's wall-clock, which is not
the quantity of interest.

Set ``REPRO_BENCH_SCALE=full`` to sweep every paper CPU count (slower);
the default "quick" sweep covers 8, 16, 32 and 60 CPUs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


def bench_cpu_counts():
    from repro.harness import FULL_CPUS, QUICK_CPUS
    return FULL_CPUS if os.environ.get("REPRO_BENCH_SCALE") == "full" \
        else QUICK_CPUS


def emit(name: str, text: str) -> None:
    """Print a result block and persist it for the experiment log."""
    banner = "=" * 72
    print(f"\n{banner}\n{text}\n{banner}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn):
    """Run a deterministic experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def cpu_counts():
    return bench_cpu_counts()
