"""Figures 11 and 12: IDA* and ACP speedups (originals only, as in the
paper — IDA*'s steal optimization changes traffic, not speedup, and ACP
has no implemented optimization).

Paper shapes: IDA* performs well on multiple clusters (2- and 4-cluster
lines nearly overlap, close to the single-cluster line).  ACP's many
small broadcasts load the gateways and the sequencer; we reproduce the
degradation, though not the paper's curious result that multicluster ACP
slightly *beat* the single cluster (see EXPERIMENTS.md).
"""

from conftest import emit, run_once

from repro.apps.ida import IDAApp, IDAParams
from repro.harness import figure_curves, format_curves, run_app


def _final(curves, n_clusters):
    return curves[n_clusters][-1].speedup


def test_fig11_ida(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig11", cpu_counts=cpu_counts))
    emit("fig11_ida", format_curves("fig11", curves))
    one, two, four = (_final(curves, 1), _final(curves, 2),
                      _final(curves, 4))
    assert four > 0.8 * one
    # "The 2-cluster line overlaps mostly with the 4-cluster line."
    assert abs(two - four) < 0.25 * max(two, four)


def test_fig11_ida_traffic_optimization(benchmark):
    """The companion claim: the optimizations nearly halve intercluster
    steal requests while the speedup hardly moves."""

    def run():
        params = IDAParams.paper()
        orig = run_app(IDAApp(), "original", 4, 15, params)
        opt = run_app(IDAApp(), "optimized", 4, 15, params)
        return orig, opt

    orig, opt = run_once(benchmark, run)
    emit("fig11_ida_steals",
         f"IDA* steal traffic on 4x15\n"
         f"original : remote={orig.stats['remote']} "
         f"requests={orig.stats['requests']} elapsed={orig.elapsed:.3f}\n"
         f"optimized: remote={opt.stats['remote']} "
         f"requests={opt.stats['requests']} elapsed={opt.elapsed:.3f}")
    assert opt.stats["remote"] <= orig.stats["remote"]
    assert abs(opt.elapsed - orig.elapsed) < 0.2 * orig.elapsed


def test_fig12_acp(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig12", cpu_counts=cpu_counts))
    emit("fig12_acp", format_curves("fig12", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four < one  # broadcast-heavy: multicluster degrades in our model
