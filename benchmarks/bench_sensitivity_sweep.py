"""Extension: the sensitivity sweep the paper names as future work.

"Performance was found to be quite sensitive to problem size, number of
processors, number of clusters, and latency and bandwidth. ... further
sensitivity analysis is part of our future work."

This sweep varies WAN bandwidth and latency independently and locates,
for Water, the *crossover*: the WAN quality at which running the
optimized program on four remote clusters stops beating one local
cluster (the paper's minimum-acceptability criterion).
"""

from conftest import emit, run_once

from repro.apps.water import WaterApp, WaterParams
from repro.harness import run_app
from repro.network import ATM_DAS, DAS_PARAMS, mbit

BANDWIDTHS_MBIT = (1.0, 2.0, 4.53, 10.0, 45.0)
LATENCIES_MS = (0.5, 1.0, 2.7, 10.0)


def test_wan_sensitivity_crossover_water(benchmark):
    def run():
        params = WaterParams.paper().with_(n_molecules=1024)
        local = run_app(WaterApp(), "original", 1, 15, params).elapsed
        grid = {}
        for bw in BANDWIDTHS_MBIT:
            for lat_ms in LATENCIES_MS:
                wan = ATM_DAS.with_(bandwidth=mbit(bw),
                                    latency=lat_ms * 1e-3 / 2)
                network = DAS_PARAMS.with_wan(wan)
                wide = run_app(WaterApp(), "optimized", 4, 15, params,
                               network=network).elapsed
                grid[(bw, lat_ms)] = wide
        return local, grid

    local, grid = run_once(benchmark, run)
    lines = ["Sensitivity sweep: Water optimized on 4x15 vs 1x15 local "
             f"(local = {local:.3f}s)",
             f"{'bw (Mbit/s)':>12} " + " ".join(
                 f"{lat:>9.1f}ms" for lat in LATENCIES_MS)]
    for bw in BANDWIDTHS_MBIT:
        cells = " ".join(
            ("+" if grid[(bw, lat)] < local else "-")
            + f"{grid[(bw, lat)]:>9.3f}" for lat in LATENCIES_MS)
        lines.append(f"{bw:>12.2f} {cells}")
    lines.append("('+' = wide-area run beats one local 15-node cluster)")
    emit("sensitivity_sweep", "\n".join(lines))

    # Monotone in both axes (up to a few percent of discrete-event noise:
    # batching boundaries shift when link speeds change).
    for lat in LATENCIES_MS:
        col = [grid[(bw, lat)] for bw in BANDWIDTHS_MBIT]
        assert all(a >= b * 0.93 for a, b in zip(col, col[1:]))
    for bw in BANDWIDTHS_MBIT:
        row = [grid[(bw, lat)] for lat in LATENCIES_MS]
        assert all(a <= b * 1.07 for a, b in zip(row, row[1:]))
    # At DAS quality the wide-area run wins; at the worst corner it loses.
    assert grid[(4.53, 2.7)] < local
    assert grid[(1.0, 10.0)] > local * 0.6
