"""Benchmark for the partitioned (PDES) engine: protocol overhead/epoch.

Measures *host* wall-clock for the same simulation twice — the
single-process oracle and the per-cluster partitioned engine with one
forked worker per cluster — on the PDES-capable apps.  The checked
number is the **per-epoch protocol overhead**::

    overhead_us_per_epoch = (best_pdes - best_serial) / epochs * 1e6

i.e. what every conservative synchronization round costs on top of the
work the oracle does anyway.  Unlike raw runs/s it is meaningful on any
host: on a one-core machine the partitions time-slice, the wall clock
is the *sum* of all partitions' CPU, and the difference against serial
is exactly the fast-lane protocol cost (channel codec, ring transfer,
semaphore handoff, cap algebra).  Lower is better; ``repro bench
--check`` enforces a ceiling instead of a floor for it.

Epoch counts, throughput and the wall-clock speedup ride along
informationally — the speedup approaches the partition count only when
the host has as many free cores as partitions, so it is geometry-bound
and never checked.  ``host_cores`` is recorded next to the numbers so
a committed baseline is never read without its geometry.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_pdes_micro.py [--repeat 3]

or under pytest-benchmark along with the rest of the suite.  Results
are persisted to ``benchmarks/out/bench_pdes_micro.txt``; the ``repro
bench`` verb turns them into the committed ``BENCH_pdes.json`` the CI
perf-smoke job regresses against.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.apps import make_app, small_params
from repro.harness.experiment import run_app


def _run(app_name: str, n_clusters: int, per: int, pdes: str,
         workers: int = 0):
    app = make_app(app_name)
    kwargs = {"pdes": pdes}
    if workers:
        kwargs["pdes_workers"] = workers
    return run_app(app, app.variants[0], n_clusters, per,
                   small_params(app_name), **kwargs)


#: (name, app, clusters, nodes/cluster).  4 clusters is the paper's DAS
#: configuration and the ISSUE's reference geometry.
WORKLOADS = [
    ("sor_4x4", "sor", 4, 4),
    ("ra_4x2", "ra", 4, 2),
]


def run_suite(repeat: int = 3):
    """Return ``(text, data)``: printable table and per-workload numbers."""
    cores = os.cpu_count() or 1
    header = (f"{'workload':>10} {'us/epoch':>9} {'epochs':>7} "
              f"{'serial/s':>9} {'pdes/s':>8} {'speedup':>8}")
    lines = [f"pdes micro-benchmark: per-epoch protocol overhead "
             f"(host cores: {cores})", header]
    data = {"host_cores": cores}
    for name, app_name, n_clusters, per in WORKLOADS:
        best_serial = best_pdes = float("inf")
        for _ in range(repeat):
            t0 = time.perf_counter()
            serial = _run(app_name, n_clusters, per, "off")
            best_serial = min(best_serial, time.perf_counter() - t0)
            t0 = time.perf_counter()
            pdes = _run(app_name, n_clusters, per, "on", workers=n_clusters)
            best_pdes = min(best_pdes, time.perf_counter() - t0)
            assert serial.elapsed == pdes.elapsed, name  # parity, always
            assert pdes.sim_stats.get("pdes_partitions") == n_clusters, name
        epochs = int(pdes.sim_stats["pdes_epochs"])
        overhead = (best_pdes - best_serial) / epochs * 1e6
        speedup = best_serial / best_pdes
        data[name] = {
            "overhead_us_per_epoch": round(overhead, 1),
            "epochs": epochs,
            "round_trips": int(pdes.sim_stats.get("pdes_round_trips", 0)),
            "serial_runs_per_s": 1.0 / best_serial,
            "pdes_runs_per_s": 1.0 / best_pdes,
            "speedup": round(speedup, 2),
            "workers": n_clusters,
        }
        lines.append(f"{name:>10} {overhead:>9.1f} {epochs:>7} "
                     f"{1 / best_serial:>9.2f} {1 / best_pdes:>8.2f} "
                     f"{speedup:>7.2f}x")
    return "\n".join(lines), data


def test_pdes_micro(benchmark):
    """pytest-benchmark entry point: one pass over every workload."""
    from conftest import emit, run_once

    text, _data = run_once(benchmark, lambda: run_suite(repeat=1))
    emit("bench_pdes_micro", text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload (best is reported)")
    args = parser.parse_args(argv)
    text, _data = run_suite(repeat=args.repeat)
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
