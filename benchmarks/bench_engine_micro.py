"""Micro-benchmark for the discrete-event engine's dispatch hot path.

Unlike the figure/table benchmarks (which measure *virtual* time), this
one measures *host* wall-clock throughput of the event loop itself:
events popped per second across workloads that mirror what the fabric
and Orca layers do millions of times per run — timeout chains, process
spawning, already-fired-event resumes (the "kick" path), channel
ping-pong and resource contention.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_micro.py [--repeat 3]

or under pytest-benchmark along with the rest of the suite.  Results are
persisted to ``benchmarks/out/bench_engine_micro.txt`` so EXPERIMENTS.md
can record before/after numbers for engine optimization passes.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.sim import CPU, Channel, Event, Simulator


def _events_processed(sim: Simulator, fallback: int) -> int:
    """Events popped, via Simulator.stats() when available."""
    stats = getattr(sim, "stats", None)
    if callable(stats):
        try:
            return stats()["events_processed"]
        except (KeyError, TypeError):
            pass
    return fallback


def wl_timeout_chain(n: int = 200_000):
    """One process yielding a long chain of timeouts (heap churn)."""
    sim = Simulator()

    def proc():
        timeout = sim.timeout
        for _ in range(n):
            yield timeout(1.0)

    sim.run_process(proc())
    return sim, n


def wl_spawn_storm(n: int = 60_000):
    """Spawn many tiny children and wait on each (the fabric send shape)."""
    sim = Simulator()

    def child():
        yield sim.timeout(0.5)
        return 1

    def proc():
        total = 0
        for _ in range(n):
            total += yield sim.spawn(child())
        return total

    assert sim.run_process(proc()) == n
    return sim, 3 * n


def wl_processed_target(n: int = 600_000):
    """Yield an already-processed event repeatedly (the kick fast path).

    Sized so the compiled tier still runs tens of milliseconds: at
    150k iterations its ~18M ev/s finished in ~8 ms, inside this
    container's throttling granularity, and the measured rate went
    bimodal (±45% run to run) — far outside perf-smoke's 30% band.
    """
    sim = Simulator()
    fired = Event(sim)
    fired.succeed("x")

    def toucher():
        yield sim.timeout(0.0)

    def proc():
        # Let the pre-fired event get processed off the heap first.
        yield sim.timeout(1.0)
        for _ in range(n):
            v = yield fired
            assert v == "x"

    sim.spawn(toucher())
    sim.run_process(proc())
    return sim, 2 * n


def wl_channel_pingpong(n: int = 60_000):
    """Two processes exchanging messages over channels."""
    sim = Simulator()
    a, b = Channel(sim, "a"), Channel(sim, "b")

    def left():
        for i in range(n):
            a.put(i)
            yield b.get()

    def right():
        for _ in range(n):
            v = yield a.get()
            b.put(v)

    sim.spawn(right())
    sim.run_process(left())
    return sim, 2 * n


def wl_cpu_contention(n: int = 20_000, workers: int = 4):
    """Several processes serialized through one CPU resource."""
    sim = Simulator()
    cpu = CPU(sim, name="c")

    def worker():
        for _ in range(n):
            yield sim.spawn(cpu.execute(1e-6))

    procs = [sim.spawn(worker()) for _ in range(workers)]
    sim.run()
    assert all(p.triggered for p in procs)
    return sim, 4 * n * workers


WORKLOADS = [
    ("timeout_chain", wl_timeout_chain),
    ("spawn_storm", wl_spawn_storm),
    ("processed_target", wl_processed_target),
    ("channel_pingpong", wl_channel_pingpong),
    ("cpu_contention", wl_cpu_contention),
]


def run_suite(repeat: int = 3) -> str:
    lines = ["engine micro-benchmark: event dispatch throughput",
             f"{'workload':>18} {'events':>10} {'best(s)':>9} {'events/s':>12}"]
    total_events = 0
    total_best = 0.0
    for name, fn in WORKLOADS:
        best = float("inf")
        events = 0
        for _ in range(repeat):
            t0 = time.perf_counter()
            sim, approx = fn()
            dt = time.perf_counter() - t0
            events = _events_processed(sim, approx)
            best = min(best, dt)
        total_events += events
        total_best += best
        lines.append(f"{name:>18} {events:>10} {best:>9.3f} "
                     f"{events / best:>12.0f}")
    lines.append(f"{'TOTAL':>18} {total_events:>10} {total_best:>9.3f} "
                 f"{total_events / total_best:>12.0f}")
    return "\n".join(lines)


def test_engine_micro(benchmark):
    """pytest-benchmark entry point: one pass over every workload."""
    from conftest import emit, run_once

    text = run_once(benchmark, lambda: run_suite(repeat=1))
    emit("bench_engine_micro", text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload (best is reported)")
    args = parser.parse_args(argv)
    text = run_suite(repeat=args.repeat)
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
