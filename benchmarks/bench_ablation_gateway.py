"""Ablation: gateway forwarding cost vs broadcast-heavy applications.

ACP "performs many small broadcasts, causing much traffic for cluster
gateways" (Section 4.7).  Sweeping the per-message gateway cost isolates
the store-and-forward overhead from wire latency/bandwidth, and shows the
asynchronous-broadcast extension growing more valuable as gateways slow.
"""

from dataclasses import replace

from conftest import emit, run_once

from repro.apps.acp import ACPApp, ACPParams
from repro.harness import run_app
from repro.network import DAS_PARAMS, GatewayParams

COSTS_US = (50, 150, 450)


def test_ablation_acp_gateway_cost(benchmark):
    def run():
        out = {}
        params = ACPParams.paper().with_(n_vars=400, n_constraints=1200)
        for cost_us in COSTS_US:
            network = replace(
                DAS_PARAMS,
                gateway=GatewayParams(forward_cost=cost_us * 1e-6))
            for variant in ("original", "optimized"):
                res = run_app(ACPApp(), variant, 4, 8, params,
                              network=network)
                out[(cost_us, variant)] = res.elapsed
        return out

    data = run_once(benchmark, run)
    lines = ["Ablation: ACP (4x8) vs gateway forwarding cost",
             f"{'fwd cost(us)':>13} {'original(s)':>12} {'async-bcast(s)':>15}"]
    for cost_us in COSTS_US:
        lines.append(f"{cost_us:>13} {data[(cost_us, 'original')]:>12.3f} "
                     f"{data[(cost_us, 'optimized')]:>15.3f}")
    emit("ablation_gateway", "\n".join(lines))

    # Slower gateways slow broadcast-heavy ACP.
    assert data[(450, "original")] > data[(50, "original")]
    # The asynchronous-broadcast extension helps at every setting.
    for cost_us in COSTS_US:
        assert data[(cost_us, "optimized")] < data[(cost_us, "original")]
