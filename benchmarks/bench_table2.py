"""Table 2: application characteristics on one cluster.

The paper reports, per application on a single 64-node cluster: RPCs/s,
RPC kbytes/s, broadcasts/s, broadcast kbytes/s, and the speedup.  We use
60 compute nodes (the experimentation system reserves four machines as
gateways) and the benchmark-scale problem sizes.
"""

from conftest import emit, run_once

from repro.apps import PAPER_ORDER
from repro.harness import format_table2, table2_row

#: The paper's Table 2 speedups on one cluster, for shape comparison.
PAPER_SPEEDUPS = {
    "water": 56.5, "tsp": 62.9, "asp": 59.3, "atpg": 50.3,
    "ida": 62.1, "ra": 25.9, "acp": 37.0, "sor": 46.3,
}


def test_table2_application_characteristics(benchmark):
    def run():
        return [table2_row(name) for name in PAPER_ORDER]

    rows = run_once(benchmark, run)
    emit("table2", format_table2(rows))

    by_app = {r["app"]: r for r in rows}
    # Every application runs "reasonably efficient" on one cluster
    # (the paper: efficiencies between 40.5% and 98%) — except RA, whose
    # communication-bound profile is the paper's own worst case.
    for name, row in by_app.items():
        if name == "ra":
            assert row["speedup"] > 3
        else:
            assert row["speedup"] > 0.3 * 60, f"{name}: {row['speedup']}"
    # RA is the most communication-intensive application, as in the paper.
    assert by_app["ra"]["rpc_per_s"] == max(
        r["rpc_per_s"] for r in rows)
    # ASP and ACP are the broadcast-heavy applications.
    bcast_heavy = sorted(rows, key=lambda r: -r["bcast_per_s"])[:3]
    assert {"asp", "acp"} <= {r["app"] for r in bcast_heavy}
