"""Figures 13 and 14: SOR speedup, original and optimized (chaotic).

Paper shape: the original blocks in an intercluster RPC at the start of
every iteration; dropping 2 of 3 intercluster row exchanges makes four
15-node clusters faster than one 15-node cluster.
"""

from conftest import emit, run_once

from repro.apps.sor import SORApp, SORParams
from repro.harness import figure_curves, format_curves, run_app


def _final(curves, n_clusters):
    return curves[n_clusters][-1].speedup


def test_fig13_sor_original(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig13", cpu_counts=cpu_counts))
    emit("fig13_sor_original", format_curves("fig13", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four < 0.5 * one


def test_fig14_sor_optimized(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig14", cpu_counts=cpu_counts))
    emit("fig14_sor_optimized", format_curves("fig14", curves))
    four = _final(curves, 4)

    # The paper's headline: 4x15 optimized beats one 15-node cluster.
    params = SORParams.paper()
    base = run_app(SORApp(), "original", 1, 1, params)
    lower = run_app(SORApp(), "original", 1, 15, params)
    assert four > base.elapsed / lower.elapsed
