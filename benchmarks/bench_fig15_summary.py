"""Figure 15: the four-cluster summary — per application: lower bound
(original on one 15-node cluster), original and optimized on four
15-node clusters, upper bound (optimized on one 60-node cluster).

Paper shape assertions:
* five of the original programs run faster on four clusters than on one
  (Water, TSP, ATPG, IDA* in our model; RA/ACP/SOR/ASP degrade);
* the optimizations lift Water/TSP/SOR/ASP substantially ("average
  speedup increase of 85 percent" over the five improved apps);
* RA stays below the lower bound even optimized.
"""

from conftest import emit, run_once

from repro.apps import PAPER_ORDER
from repro.harness import figure15_bars_many, format_bars


def test_fig15_four_cluster_summary(benchmark):
    def run():
        # One flat batch: every grid point is visible to the sweep pool
        # at once (set REPRO_JOBS>1 to parallelize).
        return figure15_bars_many(PAPER_ORDER)

    bars = run_once(benchmark, run)
    emit("fig15_summary",
         format_bars("Figure 15: four-cluster performance improvements",
                     bars))

    # Applications that beat their lower bound even unoptimized.
    above = {name for name, b in bars.items()
             if b["original_60_4"] > b["lower_bound_15_1"]}
    assert {"atpg", "ida"} <= above
    assert "ra" not in above and "acp" not in above

    # The optimizations substantially improve the restructured apps.
    gains = {name: bars[name]["optimized_60_4"] / bars[name]["original_60_4"]
             for name in ("water", "tsp", "sor", "asp", "ra")}
    assert all(g > 1.15 for g in gains.values()), gains
    avg_gain = sum(gains.values()) / len(gains) - 1.0
    assert avg_gain > 0.4  # paper: average speedup increase of 85%

    # Optimized Water/TSP come close to the upper bound.
    for name in ("water", "tsp"):
        b = bars[name]
        assert b["optimized_60_4"] > 0.7 * b["upper_bound_60_1"]

    # RA remains unsuitable for the wide-area system.
    b = bars["ra"]
    assert b["optimized_60_4"] < b["lower_bound_15_1"]
    # SOR optimized: four 15-node clusters beat one 15-node cluster.
    b = bars["sor"]
    assert b["optimized_60_4"] > b["lower_bound_15_1"]
