"""Ablation: sequencer placement for broadcast-heavy applications.

The paper names "use a dedicated node as cluster sequencer" among ASP's
further optimizations.  Each cluster's *first* node is the default
stamping site, but that node is also where this codebase places hot
application roles (queue owners, combiners, reduction representatives);
moving the sequencer to the cluster's last node separates the loads.
"""

from conftest import emit, run_once

from repro.apps.acp import ACPApp, ACPParams
from repro.apps.asp import ASPApp
from repro.harness import bench_params, run_app


def test_ablation_dedicated_sequencer_node(benchmark):
    def run():
        out = {}
        asp_params = bench_params("asp")
        acp_params = ACPParams.paper().with_(n_vars=400, n_constraints=1200)
        for label, app, params, variant in (
                ("asp", ASPApp(), asp_params, "original"),
                ("acp", ACPApp(), acp_params, "original")):
            for dedicated in (False, True):
                res = run_app(app, variant, 4, 8, params,
                              dedicated_sequencer_node=dedicated)
                out[(label, dedicated)] = res.elapsed
        return out

    data = run_once(benchmark, run)
    lines = ["Ablation: sequencer on first (shared) vs last (dedicated) node",
             f"{'app':>6} {'shared(s)':>10} {'dedicated(s)':>13}"]
    for label in ("asp", "acp"):
        lines.append(f"{label:>6} {data[(label, False)]:>10.3f} "
                     f"{data[(label, True)]:>13.3f}")
    emit("ablation_dedicated_seq", "\n".join(lines))

    # Moving the sequencer off the hot node never hurts much.
    for label in ("asp", "acp"):
        assert data[(label, True)] < data[(label, False)] * 1.1
