"""Tables 4 and 5: intercluster traffic before and after optimization
(P=60 compute nodes, C=4 clusters).

Paper shape: traffic drops sharply for Water/TSP/SOR/RA; *increases* for
ATPG (the hierarchical reduction adds messages at this problem size — the
paper notes the same inversion); broadcast volume is roughly unchanged
for Water and ASP (their optimizations target RPCs/ordering, not the
broadcast payloads).
"""

from conftest import emit, run_once

from repro.apps import PAPER_ORDER
from repro.harness import format_traffic, traffic_row


def test_tables_4_and_5_intercluster_traffic(benchmark):
    def run():
        before = [traffic_row(name, "original") for name in PAPER_ORDER]
        after = [traffic_row(name, "optimized") for name in PAPER_ORDER]
        return before, after

    before, after = run_once(benchmark, run)
    emit("table4_5",
         format_traffic("Table 4: intercluster traffic before optimization "
                        "(P=60, C=4)", before)
         + "\n\n"
         + format_traffic("Table 5: intercluster traffic after optimization "
                          "(P=60, C=4)", after))

    b = {r["app"]: r for r in before}
    a = {r["app"]: r for r in after}

    # Strong reductions for the traffic-reduction optimizations.
    assert a["water"]["rpc_kbytes"] < 0.3 * b["water"]["rpc_kbytes"]
    assert a["tsp"]["rpc_count"] < 0.2 * b["tsp"]["rpc_count"]
    assert a["sor"]["rpc_kbytes"] < 0.6 * b["sor"]["rpc_kbytes"]
    assert a["ra"]["rpc_count"] < 0.5 * b["ra"]["rpc_count"]
    # IDA*: fewer intercluster steal requests.
    assert a["ida"]["rpc_count"] <= b["ida"]["rpc_count"]
    # Broadcast volume roughly unchanged where only ordering was optimized.
    assert abs(a["asp"]["bcast_kbytes"] - b["asp"]["bcast_kbytes"]) \
        < 0.15 * max(b["asp"]["bcast_kbytes"], 1)
    assert abs(a["water"]["bcast_kbytes"] - b["water"]["bcast_kbytes"]) \
        < 0.15 * max(b["water"]["bcast_kbytes"], 1) + 1
