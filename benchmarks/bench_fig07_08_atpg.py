"""Figures 7 and 8: ATPG speedup, original and optimized.

Paper shape: ATPG communicates little, so even the original stays close
to the upper bound on multiple clusters; at DAS settings the
cluster-level reduction "did not significantly improve" the speedups
(its value shows on slower networks — see bench_sensitivity).
"""

from conftest import emit, run_once

from repro.harness import figure_curves, format_curves


def _final(curves, n_clusters):
    return curves[n_clusters][-1].speedup


def test_fig7_atpg_original(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig7", cpu_counts=cpu_counts))
    emit("fig7_atpg_original", format_curves("fig7", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four > 0.55 * one  # efficiency decreases only modestly


def test_fig8_atpg_optimized(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig8", cpu_counts=cpu_counts))
    emit("fig8_atpg_optimized", format_curves("fig8", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four > 0.8 * one
