"""Ablation: SOR's traffic/convergence trade-off.

Sweeps the fraction of dropped intercluster exchanges (keep 1 in N for
N = 1, 2, 3, 6) in *precision* mode, measuring both the iteration count
(convergence penalty) and the run time.  The paper drops 2 of 3 and
reports a 5-10% iteration increase; more aggressive dropping keeps
cutting traffic but eventually the slower convergence wins.
"""

from conftest import emit, run_once

from repro.apps.sor import SORApp, SORParams
from repro.harness import run_app

KEEPS = (1, 2, 3, 6)


def test_ablation_sor_drop_fraction(benchmark):
    def run():
        out = {}
        for keep in KEEPS:
            params = SORParams.paper().with_(
                n_rows=120, n_cols=60, precision=1e-3, n_iterations=900,
                chaotic_keep_one_in=keep)
            res = run_app(SORApp(), "optimized", 4, 15, params)
            out[keep] = (res.answer["iterations"], res.elapsed,
                         res.traffic["inter.rpc"]["count"])
        return out

    data = run_once(benchmark, run)
    lines = ["Ablation: SOR (4x15) intercluster exchange dropping",
             f"{'keep 1 in':>10} {'iterations':>11} {'elapsed(s)':>11} "
             f"{'inter RPCs':>11}"]
    for keep in KEEPS:
        it, el, rpcs = data[keep]
        lines.append(f"{keep:>10} {it:>11} {el:>11.3f} {rpcs:>11}")
    emit("ablation_sor_drop", "\n".join(lines))

    it_full, el_full, rpc_full = data[1]
    it_paper, el_paper, rpc_paper = data[3]
    # Exchange traffic (total intercluster RPCs minus the fixed
    # 6-per-iteration convergence reduce/scatter messages) drops to ~1/3.
    xch_full = rpc_full - 6 * it_full
    xch_paper = rpc_paper - 6 * it_paper
    assert xch_paper < 0.45 * xch_full
    # The paper's 5-10% convergence penalty band (we allow up to 40%).
    assert it_full <= it_paper <= 1.4 * it_full
    # Dropping exchanges still wins on time at this network quality.
    assert el_paper < el_full
