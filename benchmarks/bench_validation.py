"""Section 2 validation analog: the experimentation system vs the real WAN.

The paper validated its split-64 experimentation system (local ATM with
bandwidth capping and a 600 us gateway spin loop) against the real
Delft-Amsterdam WAN: same application binaries, 1.14% average runtime
difference.  Our analog compares two *different mechanizations of the
same end-to-end WAN figures*: the "real" model (wire latency on the ATM
PVC) vs the "emulated" model (short local-ATM wire, with the latency
recreated as gateway spin time, as the paper's firmware/gateway tricks
did).  If the simulator is well-behaved, applications cannot tell them
apart beyond small scheduling differences.
"""

from dataclasses import replace

from conftest import emit, run_once

from repro.apps import PAPER_ORDER, make_app
from repro.harness import bench_params, run_app
from repro.network import ATM_DAS, DAS_PARAMS, GatewayParams

# Emulated WAN: the one-way wire drops to a local-ATM 49 us; the missing
# 900 us reappears as gateway spinning (the gateway is dedicated, so the
# spin costs no application CPU — but it does occupy the gateway, like
# the real spin loop).
EMULATED_PARAMS = replace(
    DAS_PARAMS,
    wan=ATM_DAS.with_(latency=49e-6),
    gateway=GatewayParams(forward_cost=150e-6 + 450e-6),
)


def test_validation_emulated_vs_real_wan(benchmark):
    def run():
        out = {}
        for name in PAPER_ORDER:
            app = make_app(name)
            params = bench_params(name)
            # Validate with the wide-area-optimized variants: the spin-loop
            # emulation serializes the gateway at ~1,700 msg/s, so only
            # programs whose intercluster message rate stays below that
            # (i.e. the optimized ones — the programs one would actually
            # run on the system) can agree between the two mechanizations.
            variant = "optimized" if "optimized" in app.variants \
                else "original"
            real = run_app(app, variant, 2, 16, params,
                           network=DAS_PARAMS)
            emu = run_app(app, variant, 2, 16, params,
                          network=EMULATED_PARAMS)
            out[name] = (real.elapsed, emu.elapsed)
        return out

    data = run_once(benchmark, run)
    lines = ["Validation: real-WAN model vs emulated-WAN model (2x16)",
             f"{'app':>6} {'real(s)':>10} {'emulated(s)':>12} {'diff%':>7}"]
    diffs = []
    for name, (real, emu) in data.items():
        diff = 100.0 * abs(emu - real) / real
        diffs.append(diff)
        lines.append(f"{name:>6} {real:>10.3f} {emu:>12.3f} {diff:>6.2f}%")
    # ACP is reported but excluded from the agreement criterion: its
    # intercluster broadcast rate exceeds the spin-loop gateway's ~1,700
    # msg/s service capacity, so the two mechanizations *cannot* agree —
    # the one genuine behavioural difference between wire latency and
    # busy-wait forwarding.  (The paper's gateways saw lower rates.)
    acp_idx = PAPER_ORDER.index("acp")
    kept = [d for i, d in enumerate(diffs) if i != acp_idx]
    mean_diff = sum(kept) / len(kept)
    lines.append(f"mean |diff| = {mean_diff:.2f}% excluding ACP "
                 f"(paper: 1.14%)")
    emit("validation", "\n".join(lines))

    assert mean_diff < 5.0
    assert max(kept) < 15.0
