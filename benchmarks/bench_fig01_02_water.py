"""Figures 1 and 2: Water speedup, original and optimized.

Paper shape: the original suffers badly on multiple clusters (the
all-to-all exchange crosses the WAN); the cluster-cache optimization
brings four 15-node clusters close to the single 60-node cluster.
"""

from conftest import emit, run_once

from repro.harness import figure_curves, format_curves


def _final(curves, n_clusters):
    return curves[n_clusters][-1].speedup


def test_fig1_water_original(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig1", cpu_counts=cpu_counts))
    emit("fig1_water_original", format_curves("fig1", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four < 0.7 * one  # multicluster hurts the original badly


def test_fig2_water_optimized(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig2", cpu_counts=cpu_counts))
    emit("fig2_water_optimized", format_curves("fig2", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four > 0.6 * one  # optimized approaches the single-cluster bound
