"""Micro-benchmark for the Orca control plane: broadcasts and RPCs per second.

Measures *host* wall-clock throughput of whole Orca operations —
totally-ordered broadcasts (PB and BB dissemination modes, LAN and WAN)
and RPC round trips — in both control-plane tiers: the default callback
chains (armed broadcast/RPC ports, holdback drain, ``try_acquire``
analytic stamps, chained dissemination and replies) and the legacy
generator/process tier (``fast_paths=False``, which also selects the
fabric's process-per-leg paths).  The golden suites pin the two tiers
bit-identical in virtual time, so the speedup column is pure host-side
overhead reduction.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_orca_micro.py [--repeat 3]
    PYTHONPATH=src python benchmarks/bench_orca_micro.py --legacy

or under pytest-benchmark along with the rest of the suite.  Results are
persisted to ``benchmarks/out/bench_orca_micro.txt``; ``repro bench``
(tools/bench_report.py) folds them into the committed ``BENCH_orca
.json`` the CI perf-smoke job regresses against.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.network.message import reset_ids
from repro.orca import ObjectSpec, Operation, OrcaRuntime
from repro.orca.broadcast import BB_THRESHOLD
from repro.orca.runtime import reset_req_ids
from repro.sim import Simulator

#: Comfortably inside PB mode; BB workloads use BB_THRESHOLD itself.
PB_BYTES = 64


def _mk(fast: bool, n_clusters: int, per: int, sequencer: str):
    reset_ids()
    reset_req_ids()
    sim = Simulator()
    fabric = Fabric(sim, uniform_clusters(n_clusters, per), DAS_PARAMS,
                    fast_paths=fast)
    # The runtime tier follows the fabric tier (the default inherit).
    return sim, OrcaRuntime(sim, fabric, sequencer=sequencer)


def _bcast_workload(fast: bool, n: int, n_clusters: int, per: int,
                    size: int, sequencer: str = "distributed") -> int:
    """``n`` ordered writes from node 1 (so PB mode genuinely ships the
    operation to the cluster's stamping node 0); counted per broadcast."""
    sim, rts = _mk(fast, n_clusters, per, sequencer)
    rts.register(ObjectSpec(
        name="counter", state_factory=lambda: [0],
        operations={"add": Operation(
            fn=lambda st, v: st.__setitem__(0, st[0] + v),
            writes=True, arg_bytes=size, result_bytes=8)},
        replicated=True))

    def sender():
        for i in range(n):
            yield from rts.invoke(1, "counter", "add", (1,))

    sim.run_process(sender())
    assert rts.state_of("counter")[0] == n
    return n


def _rpc_workload(fast: bool, n: int, n_clusters: int, per: int,
                  caller: int) -> int:
    """``n`` read RPC round trips to a non-replicated object on node 0."""
    sim, rts = _mk(fast, n_clusters, per, sequencer="centralized")
    rts.register(ObjectSpec(
        name="cell", state_factory=lambda: [7],
        operations={"get": Operation(fn=lambda st: st[0],
                                     arg_bytes=8, result_bytes=8)},
        replicated=False, owner=0))

    def client():
        for _ in range(n):
            got = yield from rts.invoke(caller, "cell", "get", ())
            assert got == 7

    sim.run_process(client())
    return n


def wl_bcast_pb(fast: bool, n: int = 2_000) -> int:
    """Single-cluster PB broadcasts: ship to sequencer, it disseminates."""
    return _bcast_workload(fast, n, 1, 4, PB_BYTES)


def wl_bcast_bb(fast: bool, n: int = 2_000) -> int:
    """Single-cluster BB broadcasts: tiny seq request, sender disseminates."""
    return _bcast_workload(fast, n, 1, 4, BB_THRESHOLD)


def wl_bcast_wan(fast: bool, n: int = 800) -> int:
    """Two-cluster PB broadcasts: LAN multicast + WAN fan-out delivery."""
    return _bcast_workload(fast, n, 2, 3, PB_BYTES)


def wl_rpc_lan(fast: bool, n: int = 4_000) -> int:
    """Uncontended same-cluster RPC round trips."""
    return _rpc_workload(fast, n, 1, 4, caller=1)


def wl_rpc_wan(fast: bool, n: int = 1_500) -> int:
    """Cross-cluster RPC round trips (access links, gateways, PVC)."""
    return _rpc_workload(fast, n, 2, 3, caller=3)


WORKLOADS = [
    ("bcast_pb", wl_bcast_pb),
    ("bcast_bb", wl_bcast_bb),
    ("bcast_wan", wl_bcast_wan),
    ("rpc_lan", wl_rpc_lan),
    ("rpc_wan", wl_rpc_wan),
]

MODES = (("fast", True), ("legacy", False))


def run_suite(repeat: int = 3, modes=MODES):
    """Return ``(text, data)``: a printable table and per-workload ops/s."""
    labels = [label for label, _fp in modes]
    header = f"{'workload':>12}" + "".join(f" {l + ' op/s':>14}"
                                           for l in labels)
    if len(labels) > 1:
        header += f" {'speedup':>9}"
    lines = ["orca micro-benchmark: broadcast/RPC throughput", header]
    data = {}
    for name, fn in WORKLOADS:
        entry = {}
        for label, fp in modes:
            best = float("inf")
            ops = 0
            for _ in range(repeat):
                t0 = time.perf_counter()
                ops = fn(fp)
                dt = time.perf_counter() - t0
                best = min(best, dt)
            entry[label] = ops / best
        row = f"{name:>12}" + "".join(f" {entry[l]:>14.0f}" for l in labels)
        if "fast" in entry and "legacy" in entry:
            entry["speedup"] = entry["fast"] / entry["legacy"]
            row += f" {entry['speedup']:>8.2f}x"
        data[name] = entry
        lines.append(row)
    return "\n".join(lines), data


def test_orca_micro(benchmark):
    """pytest-benchmark entry point: one pass over every workload."""
    from conftest import emit, run_once

    text, _data = run_once(benchmark, lambda: run_suite(repeat=1))
    emit("bench_orca_micro", text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload (best is reported)")
    parser.add_argument("--legacy", action="store_true",
                        help="measure only the legacy generator tier")
    parser.add_argument("--fast", action="store_true",
                        help="measure only the fast callback tier")
    args = parser.parse_args(argv)
    modes = MODES
    if args.legacy:
        modes = (("legacy", False),)
    elif args.fast:
        modes = (("fast", True),)
    text, _data = run_suite(repeat=args.repeat, modes=modes)
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
