"""Figures 5 and 6: ASP speedup, original and optimized.

Paper shape: the original's per-iteration broadcast waits for the
distributed sequencer's WAN turn, collapsing multicluster performance;
migrating the sequencer to the broadcasting cluster pipelines
computation with WAN dissemination and recovers most of it.
"""

from conftest import emit, run_once

from repro.harness import figure_curves, format_curves


def _final(curves, n_clusters):
    return curves[n_clusters][-1].speedup


def test_fig5_asp_original(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig5", cpu_counts=cpu_counts))
    emit("fig5_asp_original", format_curves("fig5", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four < 0.65 * one


def test_fig6_asp_optimized(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig6", cpu_counts=cpu_counts))
    emit("fig6_asp_optimized", format_curves("fig6", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four > 0.6 * one
