"""Ablation: cluster-level combining policy for RA.

Sweeps the combiner's flush threshold.  Small batches approach the
uncombined original (per-message WAN overhead dominates); very large
batches delay the dependency wavefront (the paper notes that for very
large databases "the extra cluster combining overhead even defeats the
gains").
"""

from conftest import emit, run_once

from repro.apps.ra import RAApp, RAParams
from repro.harness import run_app

BATCHES = (4, 16, 64, 256)


def test_ablation_ra_combining_batch(benchmark):
    def run():
        base = RAParams.paper().with_(n_positions=8000)
        out = {"original": run_app(RAApp(), "original", 4, 15, base).elapsed}
        for batch in BATCHES:
            params = base.with_(combine_max_messages=batch,
                                combine_max_bytes=batch * 64)
            out[batch] = run_app(RAApp(), "optimized", 4, 15, params).elapsed
        return out

    data = run_once(benchmark, run)
    lines = ["Ablation: RA (4x15) combining flush threshold",
             f"{'batch':>10} {'elapsed(s)':>11}"]
    lines.append(f"{'(none)':>10} {data['original']:>11.3f}")
    for batch in BATCHES:
        lines.append(f"{batch:>10} {data[batch]:>11.3f}")
    emit("ablation_combining", "\n".join(lines))

    best = min(data[b] for b in BATCHES)
    assert best < data["original"]          # combining helps at its best
    assert data[64] <= data[4] * 1.05       # bigger batches beat tiny ones
