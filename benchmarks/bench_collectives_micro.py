"""Micro-benchmark for the tuner's collective primitives: ops per second.

Measures *host* wall-clock throughput of the parameterized collectives
PR 8 added to the fabric — the chain and binomial WAN fan-out shapes,
k-stream WAN striping — next to the flat fan-out they compete with, plus
the tuner's own probe loop (probes per second through
``repro.tuner.sweep``).  The shaped/striped paths always run as spawned
legacy generator legs (that is what keeps the fast tier bit-identical),
so unlike ``bench_fabric_micro`` there is no fast/legacy split here:
one number per workload.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_collectives_micro.py [--repeat 3]

or under pytest-benchmark along with the rest of the suite.  Results
are persisted to ``benchmarks/out/bench_collectives_micro.txt``; the
``repro bench`` verb turns them into the committed
``BENCH_collectives.json`` the CI perf-smoke job regresses against.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.network import DAS_PARAMS, Fabric, uniform_clusters
from repro.sim import Simulator
from repro.tuner import Strategy


def _mk(n_clusters: int = 4, per: int = 4):
    sim = Simulator()
    topo = uniform_clusters(n_clusters, per)
    return sim, Fabric(sim, topo, DAS_PARAMS)


def _wl_fanout(shape: str, n: int, size: int = 4096) -> int:
    sim, fab = _mk()

    def proc():
        for _ in range(n):
            done = yield from fab.wan_fanout_multicast(0, size, shape=shape)
            yield done

    sim.run_process(proc())
    return n


def wl_fanout_flat(n: int = 1_500) -> int:
    """Flat WAN fan-outs (the fixed default shape), 4 clusters."""
    return _wl_fanout("flat", n)


def wl_fanout_chain(n: int = 1_000) -> int:
    """Chain WAN fan-outs: gateway relay across 4 clusters."""
    return _wl_fanout("chain", n)


def wl_fanout_binomial(n: int = 1_000) -> int:
    """Binomial WAN fan-outs: recursive halving across 4 clusters."""
    return _wl_fanout("binomial", n)


class _Stripes:
    """Minimal decision stub: force k-stream point-to-point striping."""

    def __init__(self, k: int):
        self.k = k

    def strategy(self, size: int, n_clusters: int) -> Strategy:
        return Strategy(bb=False)

    def wan_streams(self, size: int, n_clusters: int) -> int:
        return self.k


def wl_stripe4(n: int = 1_500) -> int:
    """4-stream striped WAN deliveries, one in flight at a time."""
    sim, fab = _mk(n_clusters=2)
    fab.decision = _Stripes(4)

    def proc():
        for _ in range(n):
            yield from fab.send_and_wait(0, 4, 65536)

    sim.run_process(proc())
    return n


def wl_tune_probe(reps: int = 2) -> int:
    """The tuner's own probe loop: one tiny clean sweep, probes/s."""
    from repro.tuner import sweep

    probes = sweep(sizes=(1024, 16384), cluster_counts=(2,),
                   nodes_per_cluster=2, scenarios=(None,), reps=reps)
    return len(probes)


WORKLOADS = [
    ("fanout_flat", wl_fanout_flat),
    ("fanout_chain", wl_fanout_chain),
    ("fanout_binomial", wl_fanout_binomial),
    ("stripe4", wl_stripe4),
    ("tune_probe", wl_tune_probe),
]


def run_suite(repeat: int = 3):
    """Return ``(text, data)``: a printable table and per-workload ops/s."""
    header = f"{'workload':>16} {'ops/s':>12}"
    lines = ["collectives micro-benchmark: primitive throughput", header]
    data = {}
    for name, fn in WORKLOADS:
        best = float("inf")
        ops = 0
        for _ in range(repeat):
            t0 = time.perf_counter()
            ops = fn()
            dt = time.perf_counter() - t0
            best = min(best, dt)
        data[name] = {"ops_per_s": ops / best}
        lines.append(f"{name:>16} {ops / best:>12.0f}")
    return "\n".join(lines), data


def test_collectives_micro(benchmark):
    """pytest-benchmark entry point: one pass over every workload."""
    from conftest import emit, run_once

    text, _data = run_once(benchmark, lambda: run_suite(repeat=1))
    emit("bench_collectives_micro", text)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload (best is reported)")
    args = parser.parse_args(argv)
    text, _data = run_suite(repeat=args.repeat)
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
