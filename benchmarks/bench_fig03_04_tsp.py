"""Figures 3 and 4: TSP speedup, original and optimized.

Paper shape: the centralized job queue makes multicluster performance
mediocre (75% of fetches cross the WAN with 4 clusters); the static
per-cluster distribution nearly closes the gap (with a touch of
superlinearity in the paper's one-cluster case that our model does not
reproduce — we have no processor caches).
"""

from conftest import emit, run_once

from repro.harness import figure_curves, format_curves


def _final(curves, n_clusters):
    return curves[n_clusters][-1].speedup


def test_fig3_tsp_original(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig3", cpu_counts=cpu_counts))
    emit("fig3_tsp_original", format_curves("fig3", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four < 0.75 * one


def test_fig4_tsp_optimized(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig4", cpu_counts=cpu_counts))
    emit("fig4_tsp_optimized", format_curves("fig4", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four > 0.85 * one  # static distribution restores locality
