"""Figure 16: the two-cluster study (Delft + VU Amsterdam): original on
one 16-node cluster, original and optimized on 2 x 16, optimized on one
32-node cluster.

Paper shape: "On two clusters, performance is generally closer to the
upper bound" than in the four-cluster experiment.
"""

from conftest import emit, run_once

from repro.apps import PAPER_ORDER
from repro.harness import figure15_bars, figure16_bars_many, format_bars


def test_fig16_two_cluster_summary(benchmark):
    def run():
        # One flat batch: every grid point is visible to the sweep pool
        # at once (set REPRO_JOBS>1 to parallelize).
        return figure16_bars_many(PAPER_ORDER)

    bars = run_once(benchmark, run)
    emit("fig16_twocluster",
         format_bars("Figure 16: two-cluster performance improvements",
                     bars))

    for name in ("water", "tsp", "atpg", "ida", "sor", "asp"):
        b = bars[name]
        # Optimized on 2x16 lands at or near the 16-node single cluster
        # (SOR sits right at the boundary in our model: 0.83x; the paper
        # has it just above).
        assert b["optimized_32_2"] > 0.8 * b["original_16_1"], (name, b)

    # Two clusters are gentler than four: relative gap to the same-size
    # single cluster is smaller than in the 4-cluster study for the
    # WAN-sensitive applications.
    two = bars["water"]["original_32_2"] / bars["water"]["optimized_32_1"]
    four_bars = figure15_bars("water")
    four = four_bars["original_60_4"] / four_bars["upper_bound_60_1"]
    assert two > four
