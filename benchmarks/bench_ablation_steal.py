"""Ablation: IDA* work-stealing policy across WAN qualities.

The paper found the steal optimizations barely move the speedup at DAS
settings ("may still be of use for finer grain applications ... or
slower networks").  This sweep crosses the victim-order policy with the
WAN quality and with a finer grain to show where local-first stealing
starts paying off.
"""

from conftest import emit, run_once

from repro.apps.ida import IDAApp, IDAParams
from repro.harness import run_app
from repro.network import DAS_PARAMS, SLOW_WAN_PARAMS


def test_ablation_ida_steal_policy(benchmark):
    def run():
        out = {}
        # Finer grain + more imbalance than the headline runs.
        params = IDAParams.paper().with_(
            synth_base_nodes=100.0, synth_sigma=1.3, synth_iterations=3)
        for net_label, network in (("das", DAS_PARAMS),
                                   ("slow", SLOW_WAN_PARAMS)):
            for variant in ("original", "optimized"):
                res = run_app(IDAApp(), variant, 4, 15, params,
                              network=network)
                out[(net_label, variant)] = (res.elapsed,
                                             res.stats["remote"])
        return out

    data = run_once(benchmark, run)
    lines = ["Ablation: IDA* (4x15) steal policy x WAN quality",
             f"{'network':>8} {'policy':>10} {'elapsed(s)':>11} "
             f"{'remote steals':>14}"]
    for (net, variant), (el, remote) in data.items():
        lines.append(f"{net:>8} {variant:>10} {el:>11.3f} {remote:>14}")
    emit("ablation_steal", "\n".join(lines))

    # Local-first stealing always reduces remote steal traffic...
    assert data[("das", "optimized")][1] <= data[("das", "original")][1]
    assert data[("slow", "optimized")][1] <= data[("slow", "original")][1]
    # ...and on the slow network that shows up in the run time too.
    assert data[("slow", "optimized")][0] <= data[("slow", "original")][0] * 1.02
