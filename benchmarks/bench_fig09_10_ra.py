"""Figures 9 and 10: RA speedup, original and optimized.

Paper shape: RA's irregular fine-grain updates make the multicluster
original slower than a single 15-node cluster (speedup below 1 relative
to it); cluster-level message combining roughly doubles performance but
RA remains unsuitable for the wide-area system.
"""

from conftest import emit, run_once

from repro.harness import figure_curves, format_curves


def _final(curves, n_clusters):
    return curves[n_clusters][-1].speedup


def test_fig9_ra_original(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig9", cpu_counts=cpu_counts))
    emit("fig9_ra_original", format_curves("fig9", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    assert four < 0.3 * one  # dramatic collapse on the WAN


def test_fig10_ra_optimized(benchmark, cpu_counts):
    curves = run_once(
        benchmark, lambda: figure_curves("fig10", cpu_counts=cpu_counts))
    emit("fig10_ra_optimized", format_curves("fig10", curves))
    one, four = _final(curves, 1), _final(curves, 4)
    # Improved by combining, but still well below the single cluster.
    assert four < 0.8 * one
