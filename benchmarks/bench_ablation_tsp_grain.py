"""Ablation: TSP job grain under the static per-cluster distribution.

The paper: "the resulting increase in load imbalance can be reduced by
choosing a smaller grain of work, at the expense of increasing
intracluster communication overhead".  Sweeping the master's expansion
depth changes the job count (16x15 = 240 at depth 2, 3360 at depth 3)
and hence the grain.
"""

from conftest import emit, run_once

from repro.apps.tsp import TSPApp, TSPParams
from repro.apps.tsp import problem
from repro.harness import run_app

DEPTHS = (2, 3)


def test_ablation_tsp_job_grain(benchmark):
    def run():
        out = {}
        for depth in DEPTHS:
            # Hold total work fixed: fewer jobs -> proportionally bigger.
            scale = {2: 14.0, 3: 1.0}[depth]
            params = TSPParams.paper().with_(
                job_depth=depth, synth_mean_nodes=2000.0 * scale)
            res = run_app(TSPApp(), "optimized", 4, 15, params)
            out[depth] = (len(problem.generate_jobs(params)), res.elapsed,
                          res.stats["max_jobs_per_node"],
                          res.traffic["intra.rpc"]["count"])
        return out

    data = run_once(benchmark, run)
    lines = ["Ablation: TSP (4x15, static distribution) job grain",
             f"{'depth':>6} {'#jobs':>7} {'elapsed(s)':>11} "
             f"{'max jobs/node':>14} {'intra RPCs':>11}"]
    for depth in DEPTHS:
        jobs, el, mx, rpcs = data[depth]
        lines.append(f"{depth:>6} {jobs:>7} {el:>11.3f} {mx:>14} {rpcs:>11}")
    emit("ablation_tsp_grain", "\n".join(lines))

    # Finer grain: more RPCs, better balance, faster overall finish.
    assert data[3][3] > data[2][3]
    assert data[3][1] < data[2][1]
