"""Measure engine and fabric throughput; write/check the committed baselines.

The repo commits two small JSON files at its root:

* ``BENCH_engine.json``  — events/s per engine micro-workload
* ``BENCH_fabric.json``  — messages/s per fabric path (fast tier)

``--write`` refreshes them from a local run (do this on the machine that
defines the baseline, typically CI hardware, after a deliberate perf
change).  ``--check`` re-measures and fails if any workload dropped more
than ``--threshold`` (default 30%) below its committed number — the CI
perf-smoke job runs this so event-path regressions surface in review
rather than in a 10x slower figure sweep three PRs later.

Run from the repo root::

    PYTHONPATH=src python tools/bench_report.py --write
    PYTHONPATH=src python tools/bench_report.py --check
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "benchmarks"))

ENGINE_JSON = ROOT / "BENCH_engine.json"
FABRIC_JSON = ROOT / "BENCH_fabric.json"


def measure_engine(repeat: int = 3) -> dict:
    """Events/s per engine micro-workload (see bench_engine_micro)."""
    from bench_engine_micro import WORKLOADS, _events_processed

    results = {}
    total_events = 0
    total_best = 0.0
    for name, fn in WORKLOADS:
        best = float("inf")
        events = 0
        for _ in range(repeat):
            t0 = time.perf_counter()
            sim, approx = fn()
            dt = time.perf_counter() - t0
            events = _events_processed(sim, approx)
            best = min(best, dt)
        total_events += events
        total_best += best
        results[name] = round(events / best)
    results["TOTAL"] = round(total_events / total_best)
    return results


def measure_fabric(repeat: int = 3) -> dict:
    """Messages/s per fabric path, fast tier plus the fast/legacy ratio."""
    from bench_fabric_micro import run_suite

    _text, data = run_suite(repeat=repeat)
    return {name: {"msgs_per_s": round(entry["fast"]),
                   "speedup_vs_legacy": round(entry["speedup"], 2)}
            for name, entry in data.items()}


def _payload(kind: str, results: dict) -> dict:
    return {
        "bench": kind,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
    }


def write_baselines(repeat: int) -> int:
    eng = measure_engine(repeat)
    fab = measure_fabric(repeat)
    ENGINE_JSON.write_text(json.dumps(_payload("engine", eng), indent=2)
                           + "\n")
    FABRIC_JSON.write_text(json.dumps(_payload("fabric", fab), indent=2)
                           + "\n")
    print(f"wrote {ENGINE_JSON.name}: {eng}")
    print(f"wrote {FABRIC_JSON.name}: "
          f"{ {k: v['msgs_per_s'] for k, v in fab.items()} }")
    return 0


def check_baselines(repeat: int, threshold: float) -> int:
    failures = []

    def compare(label: str, committed: dict, current: dict) -> None:
        for name, base in committed.items():
            cur = current.get(name)
            if cur is None:
                failures.append(f"{label}/{name}: missing from current run")
                continue
            floor = base * (1.0 - threshold)
            status = "ok" if cur >= floor else "REGRESSION"
            print(f"{label:>8}/{name:<18} base={base:>9} cur={cur:>9} "
                  f"({cur / base:>5.0%})  {status}")
            if cur < floor:
                failures.append(
                    f"{label}/{name}: {cur}/s is {1 - cur / base:.0%} below "
                    f"baseline {base}/s (threshold {threshold:.0%})")

    if ENGINE_JSON.exists():
        committed = json.loads(ENGINE_JSON.read_text())["results"]
        compare("engine", committed, measure_engine(repeat))
    else:
        failures.append(f"{ENGINE_JSON.name} not found — run --write first")
    if FABRIC_JSON.exists():
        committed = json.loads(FABRIC_JSON.read_text())["results"]
        current = measure_fabric(repeat)
        compare("fabric",
                {k: v["msgs_per_s"] for k, v in committed.items()},
                {k: v["msgs_per_s"] for k, v in current.items()})
    else:
        failures.append(f"{FABRIC_JSON.name} not found — run --write first")

    if failures:
        print("\nperf-smoke FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf-smoke OK: all workloads within threshold")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="measure and (over)write the committed baselines")
    mode.add_argument("--check", action="store_true",
                      help="measure and fail on >threshold regressions")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per workload (best is reported)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional drop vs baseline (0.30)")
    args = parser.parse_args(argv)
    if args.write:
        return write_baselines(args.repeat)
    return check_baselines(args.repeat, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
