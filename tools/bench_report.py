"""Thin shim over :mod:`repro.harness.bench` (kept for muscle memory).

The measurement/baseline logic lives in ``src/repro/harness/bench.py``
so CI scripts, this tool and the ``repro bench`` CLI verb share one
entry point::

    PYTHONPATH=src python tools/bench_report.py --check
    PYTHONPATH=src python -m repro bench --check        # equivalent
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.harness.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
