#!/usr/bin/env python
"""Documentation consistency checker (run by the CI docs job).

Two classes of check over the repo's markdown:

1. **Internal links** — every relative markdown link in the scanned
   files must point at a file or directory that exists in the repo.
2. **Trace-kind lockstep** — ``docs/TRACING.md`` and the machine
   registry ``repro.obs.schema.KINDS`` must agree in both directions:
   every registered kind is documented, and every kind-shaped name
   mentioned anywhere in the scanned docs is actually registered.
3. **Scenario-model lockstep** — ``docs/SCENARIOS.md`` and the
   scenario registry (``repro.scenario.IMPAIRMENTS`` / ``FAULTS``)
   must agree in both directions: every registered model has a
   ``### `model` `` reference section, and every such section names a
   registered model.
4. **Tuner-primitive lockstep** — ``docs/TUNING.md`` and the tuner
   registry (``repro.tuner.PRIMITIVES``) must agree the same two ways.

Usage::

    python tools/check_docs.py          # exit 0 = consistent

The kind-shaped pattern is ``<prefix>.<word>`` for the prefixes the
schema uses (proc, msg, link, gw, wan, rpc, seq, bcast, scn, sweep),
so module paths like ``repro.sim.engine`` never false-positive.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.schema import KINDS  # noqa: E402
from repro.scenario import FAULTS, IMPAIRMENTS  # noqa: E402
from repro.tuner import PRIMITIVES  # noqa: E402

#: Files scanned for links and kind mentions.
DOC_FILES = ["README.md", "ROADMAP.md", "DESIGN.md", "EXPERIMENTS.md"]

#: The only file that must mention *every* registered kind.
TRACING_DOC = "docs/TRACING.md"

#: The scenario reference manual, kept in lockstep with the model
#: registry: one ``### `model` `` section per registered model.
SCENARIOS_DOC = "docs/SCENARIOS.md"

#: The tuner reference manual, kept in lockstep with the primitive
#: registry: one ``### `primitive` `` section per registered primitive.
TUNING_DOC = "docs/TUNING.md"

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_KIND_PREFIXES = sorted({name.split(".", 1)[0] for name in KINDS})
_KIND = re.compile(
    r"\b(?:" + "|".join(_KIND_PREFIXES) + r")\.[a-z_]+\b")


def doc_paths() -> list:
    paths = [ROOT / name for name in DOC_FILES]
    paths += sorted((ROOT / "docs").glob("*.md"))
    return [p for p in paths if p.exists()]


def _rel(path: Path) -> str:
    try:
        return str(path.relative_to(ROOT))
    except ValueError:
        return str(path)


def check_links(path: Path, text: str) -> list:
    """Relative links must resolve to existing files/directories."""
    problems = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = (path.parent / target).resolve()
        if not resolved.exists():
            problems.append(f"{_rel(path)}: broken link -> {target}")
    return problems


def check_kinds(texts: dict) -> list:
    """Both directions of the docs <-> schema kind lockstep."""
    problems = []
    mentioned_anywhere = set()
    for rel, text in texts.items():
        mentions = set(_KIND.findall(text))
        mentioned_anywhere |= mentions
        for name in sorted(mentions - set(KINDS)):
            problems.append(
                f"{rel}: mentions unregistered trace kind {name!r} "
                f"(not in repro.obs.schema.KINDS)")
    tracing = set(_KIND.findall(texts.get(TRACING_DOC, "")))
    for name in sorted(set(KINDS) - tracing):
        problems.append(
            f"{TRACING_DOC}: registered trace kind {name!r} is "
            f"undocumented")
    return problems


_MODEL_HEADING = re.compile(r"^###\s+`([a-z_]+)`", re.M)


def check_scenario_models(texts: dict) -> list:
    """Both directions of the docs <-> scenario-registry lockstep."""
    problems = []
    text = texts.get(SCENARIOS_DOC)
    if text is None:
        return [f"{SCENARIOS_DOC}: missing"]
    documented = set(_MODEL_HEADING.findall(text))
    registered = set(IMPAIRMENTS) | set(FAULTS)
    for name in sorted(registered - documented):
        problems.append(
            f"{SCENARIOS_DOC}: registered scenario model {name!r} has no "
            f"### `{name}` reference section")
    for name in sorted(documented - registered):
        problems.append(
            f"{SCENARIOS_DOC}: documents model {name!r} which is not "
            f"registered in repro.scenario.models")
    return problems


def check_tuner_primitives(texts: dict) -> list:
    """Both directions of the docs <-> tuner-registry lockstep."""
    problems = []
    text = texts.get(TUNING_DOC)
    if text is None:
        return [f"{TUNING_DOC}: missing"]
    documented = set(_MODEL_HEADING.findall(text))
    registered = set(PRIMITIVES)
    for name in sorted(registered - documented):
        problems.append(
            f"{TUNING_DOC}: registered tuner primitive {name!r} has no "
            f"### `{name}` reference section")
    for name in sorted(documented - registered):
        problems.append(
            f"{TUNING_DOC}: documents primitive {name!r} which is not "
            f"registered in repro.tuner.primitives")
    return problems


def main() -> int:
    texts = {}
    problems = []
    for path in doc_paths():
        text = path.read_text(encoding="utf-8")
        texts[str(path.relative_to(ROOT))] = text
        problems += check_links(path, text)
    if TRACING_DOC not in texts:
        problems.append(f"{TRACING_DOC}: missing")
    problems += check_kinds(texts)
    problems += check_scenario_models(texts)
    problems += check_tuner_primitives(texts)
    if problems:
        for problem in problems:
            print(problem)
        print(f"\n{len(problems)} documentation problem(s)")
        return 1
    print(f"docs ok: {len(texts)} files, {len(KINDS)} trace kinds, "
          f"{len(IMPAIRMENTS) + len(FAULTS)} scenario models and "
          f"{len(PRIMITIVES)} tuner primitives in lockstep")
    return 0


if __name__ == "__main__":
    sys.exit(main())
