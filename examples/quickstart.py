#!/usr/bin/env python
"""Quickstart: run one paper application on the simulated wide-area DAS.

Runs Water (the n-body all-to-all exchange program) on one 60-node
cluster and on four 15-node WAN-connected clusters, in both the original
and the wide-area-optimized form, and prints what the paper's Figure 15
summarizes: the WAN punishes the original, the cluster-cache optimization
wins most of it back.

Usage::

    python examples/quickstart.py [app]

where ``app`` is one of water, tsp, asp, atpg, ida, ra, acp, sor
(default: water).
"""

import sys

from repro.apps import make_app
from repro.harness import bench_params, run_app


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "water"
    app = make_app(name)
    params = bench_params(name)
    opt = "optimized" if "optimized" in app.variants else "original"

    print(f"== {name}: sequential baseline ==")
    base = run_app(app, "original", 1, 1, params)
    base_opt = run_app(app, opt, 1, 1, params)
    print(f"one processor: {base.elapsed:.3f} virtual seconds\n")

    rows = [
        ("1 cluster x 15 (lower bound)", "original", 1, 15, base),
        ("4 clusters x 15, original", "original", 4, 15, base),
        (f"4 clusters x 15, {opt}", opt, 4, 15, base_opt),
        (f"1 cluster x 60 (upper bound), {opt}", opt, 1, 60, base_opt),
    ]
    print(f"{'configuration':>38} {'elapsed(s)':>11} {'speedup':>8} "
          f"{'inter-RPCs':>11} {'WAN kbytes':>11}")
    for label, variant, n_clusters, per, baseline in rows:
        res = run_app(app, variant, n_clusters, per, params)
        inter = res.traffic.get("inter.rpc", {"count": 0})["count"] \
            + res.traffic.get("inter.msg", {"count": 0})["count"]
        wan_kb = res.traffic["wan"]["bytes"] / 1024.0
        print(f"{label:>38} {res.elapsed:>11.3f} "
              f"{baseline.elapsed / res.elapsed:>8.1f} {inter:>11} "
              f"{wan_kb:>11.0f}")

    print("\nThe optimized program recovers most of the WAN loss — the "
          "paper's central result.")


if __name__ == "__main__":
    main()
