#!/usr/bin/env python
"""The DAS machine (paper Figure 17) and its link performance (Table 1).

Prints the four-site topology of the Distributed ASCI Supercomputer, then
measures the Orca-level communication primitives on the simulated machine
— the numbers behind every experiment in the paper.
"""

from repro.harness import format_table1, table1_microbenchmarks
from repro.network import (
    DAS_PARAMS,
    INTERNET_PARAMS,
    das_experimentation,
    das_real,
)


def main() -> None:
    print("The Distributed ASCI Supercomputer (Figure 17)")
    print("-" * 56)
    topo = das_real()
    print(topo.describe())
    print(f"total: {topo.n_nodes} compute nodes + {topo.n_clusters} "
          f"dedicated gateways, pairwise 6 Mbit/s ATM PVCs\n")

    print("Experimentation system (the split 64-node VU cluster):")
    topo = das_experimentation(4, 15)
    print(topo.describe())

    print("\nLow-level Orca performance on the DAS model")
    print("-" * 56)
    print(format_table1(table1_microbenchmarks(DAS_PARAMS)))
    print("\n(paper: RPC 40 us / 2.7 ms and 208 / 4.53 Mbit/s;"
          "\n broadcast 65 us / 3.0 ms and 248 / 4.53 Mbit/s)")

    print("\nSame benchmark over the ordinary Internet on a quiet Sunday")
    print("-" * 56)
    print(format_table1(table1_microbenchmarks(INTERNET_PARAMS)))
    print("\n(paper: 8 ms latency, 1.8 Mbit/s)")


if __name__ == "__main__":
    main()
