#!/usr/bin/env python
"""Writing your own application against the framework.

A downstream user's view: implement a new parallel program (Monte-Carlo
estimation of pi with a shared work counter), plug it into the
``Application`` interface, and compare a naive shared-counter design with
a cluster-level-reduction design on the wide-area machine — the ATPG
lesson applied to fresh code.

Run: ``python examples/custom_application.py``
"""

from typing import Any, Dict, Generator

from repro.apps.base import Application
from repro.core import cluster_reduce
from repro.harness import run_app
from repro.orca import Context, ObjectSpec, Operation, OrcaRuntime
from repro.sim import substream


class MonteCarloPi(Application):
    """Each processor samples points; hit counts are aggregated either by
    per-batch RPCs to a shared object ("original") or by one cluster-level
    reduction at the end ("optimized")."""

    name = "mcpi"

    def __init__(self, samples_per_node: int = 200_000,
                 batch: int = 10_000, sample_cost: float = 0.4e-6):
        self.samples_per_node = samples_per_node
        self.batch = batch
        self.sample_cost = sample_cost

    def register(self, rts: OrcaRuntime, params: Any,
                 variant: str) -> Dict[str, Any]:
        def add(state, hits, total):
            state["hits"] += hits
            state["total"] += total

        rts.register(ObjectSpec(
            "pi.stats", lambda: {"hits": 0, "total": 0},
            {"add": Operation(fn=add, writes=True, arg_bytes=16)},
            owner=0))
        return {"result": None}

    def process(self, ctx: Context, params: Any, variant: str,
                shared: Dict[str, Any]) -> Generator:
        rng = substream(params or 0, f"mcpi.{ctx.node}")
        hits = 0
        done = 0
        while done < self.samples_per_node:
            n = min(self.batch, self.samples_per_node - done)
            xy = rng.random((n, 2))
            batch_hits = int(((xy ** 2).sum(axis=1) <= 1.0).sum())
            yield from ctx.compute(n * self.sample_cost)
            done += n
            if variant == "original":
                # Naive: report every batch to the shared object (an RPC
                # that crosses the WAN from remote clusters).
                yield from ctx.invoke("pi.stats", "add", batch_hits, n)
            else:
                hits += batch_hits
        if variant == "optimized":
            total = yield from cluster_reduce(
                ctx, (hits, done), lambda a, b: (a[0] + b[0], a[1] + b[1]),
                size=16, root=0, tag="mcpi")
            if ctx.node == 0:
                shared["result"] = total
        return None

    def finalize(self, rts: OrcaRuntime, params: Any, variant: str,
                 shared: Dict[str, Any]) -> float:
        if variant == "optimized":
            hits, total = shared["result"]
        else:
            state = rts.state_of("pi.stats")
            hits, total = state["hits"], state["total"]
        return 4.0 * hits / total


def main() -> None:
    app = MonteCarloPi()
    seed = 2026
    print("Monte-Carlo pi on the wide-area DAS (4 clusters x 8 nodes)")
    for variant in ("original", "optimized"):
        res = run_app(app, variant, 4, 8, seed)
        inter = res.traffic.get("inter.rpc", {"count": 0})["count"]
        print(f"  {variant:>10}: pi ~= {res.answer:.5f}, "
              f"elapsed {res.elapsed:.3f}s, intercluster RPCs {inter}")
    print("\nSame lesson as the paper's ATPG: accumulate locally, reduce "
          "per cluster, cross the WAN once.")


if __name__ == "__main__":
    main()
