#!/usr/bin/env python
"""Wide-area deployment planner: is an application worth running across
WAN-connected clusters, and which optimization does it need?

For each of the paper's communication patterns this script runs the
application on one local cluster and on the wide-area machine under three
WAN qualities (DAS ATM, ordinary Internet, and a slow 10 ms / 2 Mbit/s
link), then applies the paper's acceptance rule: using additional remote
clusters must not make the program slower than one local cluster.
"""

from repro.apps import PAPER_ORDER, make_app
from repro.core import TABLE3
from repro.harness import bench_params, run_app
from repro.network import DAS_PARAMS, INTERNET_PARAMS, SLOW_WAN_PARAMS

#: demo-scale overrides so the full sweep finishes in about a minute.
QUICK_SCALE = {
    "asp": dict(n_vertices=300),
    "water": dict(n_molecules=1024),
    "ida": dict(synth_iterations=2, synth_jobs=128),
    "ra": dict(n_positions=6000),
    "sor": dict(n_iterations=20),
}

NETWORKS = [("DAS-ATM", DAS_PARAMS), ("Internet", INTERNET_PARAMS),
            ("slow-WAN", SLOW_WAN_PARAMS)]


def verdict(local: float, wide: float) -> str:
    if wide < 0.8 * local:
        return "worth it"
    if wide < local:
        return "marginal"
    return "stay local"


def main() -> None:
    print("Wide-area deployment planner: 4 x 8 remote vs 1 x 8 local")
    print(f"{'app':>6} {'pattern':>28} {'network':>9} {'1x8(s)':>8} "
          f"{'4x8 orig':>9} {'4x8 opt':>9} {'verdict(opt)':>13}")
    for name in PAPER_ORDER:
        app = make_app(name)
        params = bench_params(name)
        if name in QUICK_SCALE:
            params = params.with_(**QUICK_SCALE[name])
        opt = "optimized" if "optimized" in app.variants else "original"
        pattern = TABLE3[name].communication
        for net_label, network in NETWORKS:
            local = run_app(app, "original", 1, 8, params,
                            network=network).elapsed
            wide_orig = run_app(app, "original", 4, 8, params,
                                network=network).elapsed
            wide_opt = run_app(app, opt, 4, 8, params,
                               network=network).elapsed
            print(f"{name:>6} {pattern[:28]:>28} {net_label:>9} "
                  f"{local:>8.2f} {wide_orig:>9.2f} {wide_opt:>9.2f} "
                  f"{verdict(local, wide_opt):>13}")
        print()

    print("Optimizations applied (paper Table 3):")
    for name in PAPER_ORDER:
        row = TABLE3[name]
        print(f"  {row.app:>6}: {row.improvement}  "
              f"[{row.family.value}]")


if __name__ == "__main__":
    main()
