#!/usr/bin/env python
"""Bottleneck analysis: *why* does each application behave as it does on
the wide-area machine?

Runs every paper application (original variant) on four 8-node clusters
with utilization collection on, and prints which resource saturates —
CPUs, gateways, WAN PVCs, or none (latency-bound).  The verdicts recover
the paper's per-application diagnoses:

* ATPG/IDA*: CPU-bound — that is why they tolerate the WAN.
* RA: gateway-bound — per-message forwarding cost, the combining target.
* Water/SOR original: latency/WAN-bound — blocking RPC stalls.
"""

from repro.apps import PAPER_ORDER, make_app
from repro.harness import bench_params, run_app
from repro.metrics import format_utilization


def main() -> None:
    print("Bottleneck analysis on 4 clusters x 8 nodes (original variants)")
    print("=" * 64)
    for name in PAPER_ORDER:
        app = make_app(name)
        params = bench_params(name)
        res = run_app(app, "original", 4, 8, params, utilization=True)
        rep = res.utilization
        print(f"\n{name} (elapsed {res.elapsed:.3f}s)")
        print("  " + format_utilization(rep).replace("\n", "\n  "))


if __name__ == "__main__":
    main()
